#include "serve/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace dronedse::serve {

namespace {

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("serve::Server: fcntl(O_NONBLOCK) failed");
}

} // namespace

Server::Server(ServerOptions options)
    : options_(options), service_(options.service)
{
    if (options_.workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        options_.workers = hw == 0 ? 1 : static_cast<int>(hw);
    }
}

Server::~Server()
{
    stop();
}

double
Server::monotonicNow() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint16_t
Server::start()
{
    if (running_.load())
        return port_;

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("serve::Server: socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bindAddress.c_str(),
                    &addr.sin_addr) != 1)
        fatal("serve::Server: bad bind address '" +
              options_.bindAddress + "'");
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0)
        fatal("serve::Server: bind() failed: " +
              std::string(std::strerror(errno)));
    if (::listen(listenFd_, options_.backlog) < 0)
        fatal("serve::Server: listen() failed");
    setNonBlocking(listenFd_);

    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) < 0)
        fatal("serve::Server: getsockname() failed");
    port_ = ntohs(bound.sin_port);

    int pipe_fds[2];
    if (::pipe(pipe_fds) < 0)
        fatal("serve::Server: pipe() failed");
    wakeReadFd_ = pipe_fds[0];
    wakeWriteFd_ = pipe_fds[1];
    setNonBlocking(wakeReadFd_);
    setNonBlocking(wakeWriteFd_);

    stopping_.store(false);
    running_.store(true);
    eventThread_ = std::thread([this] { eventLoop(); });
    workerThreads_.reserve(
        static_cast<std::size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        workerThreads_.emplace_back([this] { workerLoop(); });

    inform("dse_server listening on " + options_.bindAddress + ":" +
           std::to_string(port_));
    return port_;
}

void
Server::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    wakeEventLoop();
    workCv_.notifyAll();
    if (eventThread_.joinable())
        eventThread_.join();
    for (std::thread &worker : workerThreads_) {
        if (worker.joinable())
            worker.join();
    }
    workerThreads_.clear();

    for (auto &[id, conn] : connections_) {
        if (conn.fd >= 0)
            ::close(conn.fd);
    }
    connections_.clear();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (wakeReadFd_ >= 0)
        ::close(wakeReadFd_);
    if (wakeWriteFd_ >= 0)
        ::close(wakeWriteFd_);
    listenFd_ = wakeReadFd_ = wakeWriteFd_ = -1;
    running_.store(false);
}

void
Server::wakeEventLoop()
{
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n =
        ::write(wakeWriteFd_, &byte, 1);
}

void
Server::workerLoop()
{
    while (!stopping_.load()) {
        const auto completed = service_.processOne(monotonicNow());
        if (completed) {
            {
                util::MutexLock lock(replyMutex_);
                replyQueue_.push_back(*completed);
            }
            wakeEventLoop();
            continue;
        }
        util::MutexLock lock(workMutex_);
        // The predicate touches no workMutex_-guarded state (see the
        // member comment), so it is safe inside the timed wait.
        workCv_.waitFor(workMutex_, std::chrono::milliseconds(50),
                        [this] {
                            return stopping_.load() ||
                                   service_.admission().depth() > 0;
                        });
    }
}

void
Server::queueReply(Connection &conn, const std::string &reply)
{
    conn.outbuf += reply;
    conn.outbuf += '\n';
}

void
Server::drainReplyQueue()
{
    std::deque<std::pair<std::uint64_t, std::string>> pending;
    {
        util::MutexLock lock(replyMutex_);
        pending.swap(replyQueue_);
    }
    for (auto &[conn_id, reply] : pending) {
        const auto it = connections_.find(conn_id);
        if (it == connections_.end())
            continue; // client went away before its reply
        queueReply(it->second, reply);
    }
}

void
Server::acceptClients()
{
    while (true) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            break; // EAGAIN or transient error: poll again
        setNonBlocking(fd);
        Connection conn;
        conn.fd = fd;
        connections_.emplace(nextConnId_++, std::move(conn));
        obs::metrics().counter("serve.connections").add(1);
    }
}

void
Server::readClient(std::uint64_t conn_id)
{
    Connection &conn = connections_.at(conn_id);
    char buf[65536];
    while (true) {
        const ssize_t n = ::read(conn.fd, buf, sizeof buf);
        if (n > 0) {
            conn.inbuf.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            closeClient(conn_id);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        closeClient(conn_id);
        return;
    }

    std::size_t start = 0;
    bool queued_any = false;
    while (true) {
        const std::size_t newline = conn.inbuf.find('\n', start);
        if (newline == std::string::npos)
            break;
        std::string frame =
            conn.inbuf.substr(start, newline - start);
        if (!frame.empty() && frame.back() == '\r')
            frame.pop_back();
        start = newline + 1;
        if (frame.empty())
            continue;
        const IngestOutcome outcome =
            service_.ingest(frame, conn_id, monotonicNow());
        if (outcome.queued)
            queued_any = true;
        else
            queueReply(conn, outcome.reply);
    }
    conn.inbuf.erase(0, start);

    // A frame longer than the cap can never complete: answer
    // too_large once and drop the connection after the flush (the
    // stream cannot be resynchronized).
    if (conn.inbuf.size() > service_.options().maxFrameBytes) {
        queueReply(
            conn,
            serializeErrorReply(
                0, ErrorReply{ErrorCode::TooLarge,
                              "frame exceeds " +
                                  std::to_string(
                                      service_.options()
                                          .maxFrameBytes) +
                                  " bytes"}));
        conn.inbuf.clear();
        conn.closeAfterFlush = true;
    }
    if (queued_any)
        workCv_.notifyAll();
}

void
Server::writeClient(std::uint64_t conn_id)
{
    Connection &conn = connections_.at(conn_id);
    while (!conn.outbuf.empty()) {
        const ssize_t n =
            ::write(conn.fd, conn.outbuf.data(), conn.outbuf.size());
        if (n > 0) {
            conn.outbuf.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        closeClient(conn_id);
        return;
    }
    if (conn.closeAfterFlush)
        closeClient(conn_id);
}

void
Server::closeClient(std::uint64_t conn_id)
{
    const auto it = connections_.find(conn_id);
    if (it == connections_.end())
        return;
    if (it->second.fd >= 0)
        ::close(it->second.fd);
    connections_.erase(it);
}

void
Server::eventLoop()
{
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn_ids;
    while (!stopping_.load()) {
        fds.clear();
        fd_conn_ids.clear();
        fds.push_back(pollfd{listenFd_, POLLIN, 0});
        fds.push_back(pollfd{wakeReadFd_, POLLIN, 0});
        for (const auto &[id, conn] : connections_) {
            short events = POLLIN;
            if (!conn.outbuf.empty())
                events |= POLLOUT;
            fds.push_back(pollfd{conn.fd, events, 0});
            fd_conn_ids.push_back(id);
        }

        const int ready =
            ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
        if (stopping_.load())
            break;
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            fatal("serve::Server: poll() failed");
        }

        if (fds[1].revents & POLLIN) {
            char drain[256];
            while (::read(wakeReadFd_, drain, sizeof drain) > 0) {
            }
        }
        drainReplyQueue();

        if (fds[0].revents & POLLIN)
            acceptClients();

        for (std::size_t i = 2; i < fds.size(); ++i) {
            const std::uint64_t conn_id = fd_conn_ids[i - 2];
            if (connections_.find(conn_id) == connections_.end())
                continue;
            if (fds[i].revents & (POLLERR | POLLNVAL)) {
                closeClient(conn_id);
                continue;
            }
            if (fds[i].revents & POLLIN)
                readClient(conn_id);
            if (connections_.find(conn_id) == connections_.end())
                continue;
            if (fds[i].revents & (POLLOUT | POLLHUP)) {
                if (fds[i].revents & POLLOUT)
                    writeClient(conn_id);
                else if (connections_.at(conn_id).outbuf.empty())
                    closeClient(conn_id);
            }
        }

        // Replies may have landed for connections that were not
        // POLLOUT-armed this round; try an opportunistic flush so
        // a reply never waits for the next POLLIN.
        for (auto it = connections_.begin();
             it != connections_.end();) {
            const std::uint64_t conn_id = it->first;
            ++it; // writeClient may erase the current entry
            auto current = connections_.find(conn_id);
            if (current != connections_.end() &&
                !current->second.outbuf.empty())
                writeClient(conn_id);
        }
    }
}

} // namespace dronedse::serve
