/**
 * @file
 * QueryPlanner: validation and execution of admitted queries.
 *
 * Validation is the semantic half of request checking (the parser
 * owns types and spellings): axis values must be physical, cell
 * counts within the LiPo range, the capacity grid finite, and the
 * expanded grid under a hard point cap so one query cannot wedge
 * the service.
 *
 * Execution routes through one shared `engine::SweepEngine`, so
 * every query — and every *concurrent* query — is memoized through
 * the engine's sharded cache.  Identical concurrent sweep/pareto
 * specs are additionally coalesced single-flight: the first caller
 * becomes the leader and runs the batch, followers block on the
 * leader's result and share it (the canonical spec serialization is
 * the coalescing key, so a sweep and a pareto over the same spec
 * share one engine run).  Overlapping-but-distinct specs still
 * share work point-by-point through the memo cache.
 */

#ifndef DRONEDSE_SERVE_PLANNER_HH
#define DRONEDSE_SERVE_PLANNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "codesign/codesign.hh"
#include "engine/engine.hh"
#include "serve/request.hh"
#include "util/thread_annotations.hh"

namespace dronedse::serve {

/** Hard bounds a valid query must respect. */
struct PlannerLimits
{
    /** Max grid points one sweep/pareto query may expand to. */
    std::size_t maxGridPoints = 200000;
    /** Max entries per spec axis array. */
    std::size_t maxAxisEntries = 256;
    /** Max solver evaluations one explore query may budget. */
    std::size_t maxExploreEvaluations = 100000;
    /** Max Monte-Carlo samples one risk query may draw. */
    std::size_t maxRiskSamples = 65536;
    /** Max catalog replicates behind one risk query's scatter. */
    int maxScatterReplicates = 4096;
    /** Smallest accepted capacity step (mAh). */
    Quantity<MilliampHours> minCapacityStepMah{1.0};
    /** Largest accepted wheelbase (mm). */
    Quantity<Millimeters> maxWheelbaseMm{2000.0};
    /** Accepted TWR range. */
    double minTwr = 1.0;
    double maxTwr = 10.0;
};

/** Monotonic planner counters. */
struct PlannerStats
{
    std::uint64_t executed = 0;
    std::uint64_t invalid = 0;
    /** Queries that ran a fresh engine batch as leader. */
    std::uint64_t batchesLed = 0;
    /** Queries that joined an in-flight identical batch. */
    std::uint64_t coalesced = 0;
};

class QueryPlanner
{
  public:
    explicit QueryPlanner(engine::SweepEngine &engine,
                          PlannerLimits limits = {});

    /**
     * Semantic validation; fills `err` (InvalidRequest) and returns
     * false on violation.  Touches no engine state.
     */
    bool validate(const Request &request, ErrorReply &err) const;

    /**
     * Validate + execute + serialize: the whole worker-side
     * pipeline for one admitted request.  Always returns exactly
     * one reply frame; thread-safe for any number of concurrent
     * callers.
     */
    std::string execute(const Request &request)
        DDSE_EXCLUDES(mutex_);

    PlannerStats stats() const DDSE_EXCLUDES(mutex_);

    engine::SweepEngine &engine() { return engine_; }

  private:
    /**
     * One in-flight computation of type T: the leader publishes the
     * shared value under the flight's own mutex, followers wait on
     * the condvar.  Every query family shares this one shape.
     */
    template <typename T> struct InFlight
    {
        util::Mutex mutex;
        util::CondVar cv;
        bool done DDSE_GUARDED_BY(mutex) = false;
        std::shared_ptr<T> value DDSE_GUARDED_BY(mutex);
    };

    template <typename T>
    using FlightTable =
        std::unordered_map<std::string,
                           std::shared_ptr<InFlight<T>>>;

    /**
     * The single-flight engine shared by every coalesced query
     * family: first caller on `key` becomes the leader and runs
     * `make`, followers block and share the leader's value.
     * Defined in planner.cc (only instantiated there).
     */
    template <typename T, typename MakeFn>
    std::shared_ptr<T> runSingleFlight(FlightTable<T> &table,
                                       const std::string &key,
                                       const char *span_name,
                                       MakeFn &&make)
        DDSE_EXCLUDES(mutex_);

    /** Run a spec single-flight (see file comment). */
    std::shared_ptr<engine::SweepResult>
    runCoalesced(const SweepSpec &spec) DDSE_EXCLUDES(mutex_);

    /** Run a mission single-flight, keyed the same way. */
    std::shared_ptr<codesign::CodesignOutcome>
    runCodesignCoalesced(const codesign::MissionSpec &mission)
        DDSE_EXCLUDES(mutex_);

    /** Run an adaptive exploration single-flight. */
    std::shared_ptr<explore::ExploreResult>
    runExploreCoalesced(const explore::ExploreQuery &query)
        DDSE_EXCLUDES(mutex_);

    /** Run a risk query single-flight. */
    std::shared_ptr<explore::RiskOutcome>
    runRiskCoalesced(const explore::RiskQuery &query)
        DDSE_EXCLUDES(mutex_);

    engine::SweepEngine &engine_;
    PlannerLimits limits_;
    codesign::CodesignDriver codesign_;

    mutable util::Mutex mutex_;
    PlannerStats stats_ DDSE_GUARDED_BY(mutex_);
    FlightTable<engine::SweepResult> inflight_
        DDSE_GUARDED_BY(mutex_);
    FlightTable<codesign::CodesignOutcome> inflightCodesign_
        DDSE_GUARDED_BY(mutex_);
    FlightTable<explore::ExploreResult> inflightExplore_
        DDSE_GUARDED_BY(mutex_);
    FlightTable<explore::RiskOutcome> inflightRisk_
        DDSE_GUARDED_BY(mutex_);
};

} // namespace dronedse::serve

#endif // DRONEDSE_SERVE_PLANNER_HH
