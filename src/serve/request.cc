#include "serve/request.hh"

#include <cmath>

#include "util/json.hh"
#include "util/logging.hh"

namespace dronedse::serve {

namespace {

/** Largest id that survives the double-typed JSON number channel. */
constexpr double kMaxId = 9007199254740992.0; // 2^53

bool
invalid(ErrorReply &err, const std::string &message)
{
    err.code = ErrorCode::InvalidRequest;
    err.message = message;
    return false;
}

/**
 * Read an optional member of `obj`: absent keeps the caller's
 * default and succeeds; present-but-wrong-type fails.
 */
bool
readDouble(const JsonValue &obj, const char *key, double &out,
           ErrorReply &err)
{
    const JsonValue *value = obj.find(key);
    if (!value)
        return true;
    if (!value->isNumber())
        return invalid(err, std::string(key) + " must be a number");
    out = value->asNumber();
    return true;
}

bool
readInt(const JsonValue &obj, const char *key, int &out,
        ErrorReply &err)
{
    const JsonValue *value = obj.find(key);
    if (!value)
        return true;
    if (!value->isNumber())
        return invalid(err, std::string(key) + " must be a number");
    const double v = value->asNumber();
    if (std::floor(v) != v || v < -1e9 || v > 1e9)
        return invalid(err, std::string(key) + " must be an integer");
    out = static_cast<int>(v);
    return true;
}

bool
readString(const JsonValue &obj, const char *key, std::string &out,
           ErrorReply &err)
{
    const JsonValue *value = obj.find(key);
    if (!value)
        return true;
    if (!value->isString())
        return invalid(err, std::string(key) + " must be a string");
    out = value->asString();
    return true;
}

bool
readSize(const JsonValue &obj, const char *key, std::size_t &out,
         ErrorReply &err)
{
    const JsonValue *value = obj.find(key);
    if (!value)
        return true;
    if (!value->isNumber())
        return invalid(err, std::string(key) + " must be a number");
    const double v = value->asNumber();
    if (std::floor(v) != v || v < 0.0 || v > kMaxId)
        return invalid(err, std::string(key) +
                                " must be a non-negative integer");
    out = static_cast<std::size_t>(v);
    return true;
}

bool
readU64(const JsonValue &obj, const char *key, std::uint64_t &out,
        ErrorReply &err)
{
    std::size_t v = static_cast<std::size_t>(out);
    if (!readSize(obj, key, v, err))
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
readBool(const JsonValue &obj, const char *key, bool &out,
         ErrorReply &err)
{
    const JsonValue *value = obj.find(key);
    if (!value)
        return true;
    if (!value->isBool())
        return invalid(err, std::string(key) + " must be a boolean");
    out = value->asBool();
    return true;
}

bool
parseEscClass(const std::string &name, EscClass &out, ErrorReply &err)
{
    if (name == "short_flight")
        out = EscClass::ShortFlight;
    else if (name == "long_flight")
        out = EscClass::LongFlight;
    else
        return invalid(err, "unknown esc_class '" + name + "'");
    return true;
}

const char *
escClassName(EscClass esc)
{
    return esc == EscClass::ShortFlight ? "short_flight"
                                        : "long_flight";
}

bool
parseActivity(const std::string &name, FlightActivity &out,
              ErrorReply &err)
{
    if (name == "hovering")
        out = FlightActivity::Hovering;
    else if (name == "maneuvering")
        out = FlightActivity::Maneuvering;
    else
        return invalid(err, "unknown activity '" + name + "'");
    return true;
}

const char *
activityName(FlightActivity activity)
{
    return activity == FlightActivity::Hovering ? "hovering"
                                                : "maneuvering";
}

bool
parseBoardClass(const std::string &name, BoardClass &out,
                ErrorReply &err)
{
    if (name == "basic")
        out = BoardClass::Basic;
    else if (name == "improved")
        out = BoardClass::Improved;
    else
        return invalid(err, "unknown board class '" + name + "'");
    return true;
}

const char *
boardClassName(BoardClass cls)
{
    return cls == BoardClass::Basic ? "basic" : "improved";
}

bool
parseBoard(const JsonValue &value, ComputeBoardRecord &out,
           ErrorReply &err)
{
    if (!value.isObject())
        return invalid(err, "board must be an object");
    std::string cls_name;
    if (!readString(value, "name", out.name, err) ||
        !readString(value, "class", cls_name, err) ||
        !readDouble(value, "weight_g", out.weightG, err) ||
        !readDouble(value, "power_w", out.powerW, err))
        return false;
    if (!cls_name.empty() &&
        !parseBoardClass(cls_name, out.boardClass, err))
        return false;
    return true;
}

std::string
serializeBoard(const ComputeBoardRecord &board)
{
    std::string out = "{";
    out += "\"name\": " + jsonQuote(board.name);
    out += ", \"class\": " +
           jsonQuote(boardClassName(board.boardClass));
    out += ", \"weight_g\": " + jsonNumber(board.weightG);
    out += ", \"power_w\": " + jsonNumber(board.powerW);
    out += "}";
    return out;
}

bool
parsePoint(const JsonValue &value, DesignInputs &out, ErrorReply &err)
{
    if (!value.isObject())
        return invalid(err, "point must be an object");
    double wheelbase = out.wheelbaseMm.value();
    double capacity = out.capacityMah.value();
    double prop = out.propDiameterIn.value();
    double sensor_weight = out.sensorWeightG.value();
    double sensor_power = out.sensorPowerW.value();
    double payload = out.payloadG.value();
    std::string esc_name;
    std::string activity_name_in;
    if (!readDouble(value, "wheelbase_mm", wheelbase, err) ||
        !readInt(value, "cells", out.cells, err) ||
        !readDouble(value, "capacity_mah", capacity, err) ||
        !readDouble(value, "twr", out.twr, err) ||
        !readDouble(value, "prop_diameter_in", prop, err) ||
        !readString(value, "esc_class", esc_name, err) ||
        !readDouble(value, "sensor_weight_g", sensor_weight, err) ||
        !readDouble(value, "sensor_power_w", sensor_power, err) ||
        !readDouble(value, "payload_g", payload, err) ||
        !readString(value, "activity", activity_name_in, err))
        return false;
    if (!esc_name.empty() &&
        !parseEscClass(esc_name, out.escClass, err))
        return false;
    if (!activity_name_in.empty() &&
        !parseActivity(activity_name_in, out.activity, err))
        return false;
    if (const JsonValue *board = value.find("board")) {
        if (!parseBoard(*board, out.compute, err))
            return false;
    }
    out.wheelbaseMm = Quantity<Millimeters>(wheelbase);
    out.capacityMah = Quantity<MilliampHours>(capacity);
    out.propDiameterIn = Quantity<Inches>(prop);
    out.sensorWeightG = Quantity<Grams>(sensor_weight);
    out.sensorPowerW = Quantity<Watts>(sensor_power);
    out.payloadG = Quantity<Grams>(payload);
    return true;
}

std::string
serializePoint(const DesignInputs &point)
{
    std::string out = "{";
    out += "\"wheelbase_mm\": " +
           jsonNumber(point.wheelbaseMm.value());
    out += ", \"cells\": " + std::to_string(point.cells);
    out += ", \"capacity_mah\": " +
           jsonNumber(point.capacityMah.value());
    out += ", \"twr\": " + jsonNumber(point.twr);
    out += ", \"prop_diameter_in\": " +
           jsonNumber(point.propDiameterIn.value());
    out += ", \"esc_class\": " +
           jsonQuote(escClassName(point.escClass));
    out += ", \"board\": " + serializeBoard(point.compute);
    out += ", \"sensor_weight_g\": " +
           jsonNumber(point.sensorWeightG.value());
    out += ", \"sensor_power_w\": " +
           jsonNumber(point.sensorPowerW.value());
    out += ", \"payload_g\": " + jsonNumber(point.payloadG.value());
    out += ", \"activity\": " +
           jsonQuote(activityName(point.activity));
    out += "}";
    return out;
}

bool
parseSpec(const JsonValue &value, SweepSpec &out, ErrorReply &err)
{
    if (!value.isObject())
        return invalid(err, "spec must be an object");
    if (const JsonValue *airframes = value.find("airframes")) {
        if (!airframes->isArray())
            return invalid(err, "airframes must be an array");
        out.airframes.clear();
        for (const JsonValue &entry : airframes->items()) {
            if (!entry.isObject())
                return invalid(err,
                               "airframes entries must be objects");
            double wheelbase = 450.0;
            double prop = 0.0;
            if (!readDouble(entry, "wheelbase_mm", wheelbase, err) ||
                !readDouble(entry, "prop_diameter_in", prop, err))
                return false;
            out.airframes.push_back(
                SweepAirframe{Quantity<Millimeters>(wheelbase),
                              Quantity<Inches>(prop)});
        }
    }
    if (const JsonValue *boards = value.find("boards")) {
        if (!boards->isArray())
            return invalid(err, "boards must be an array");
        out.boards.clear();
        for (const JsonValue &entry : boards->items()) {
            ComputeBoardRecord board;
            if (!parseBoard(entry, board, err))
                return false;
            out.boards.push_back(std::move(board));
        }
    }
    if (const JsonValue *activities = value.find("activities")) {
        if (!activities->isArray())
            return invalid(err, "activities must be an array");
        out.activities.clear();
        for (const JsonValue &entry : activities->items()) {
            if (!entry.isString())
                return invalid(err,
                               "activities entries must be strings");
            FlightActivity activity = FlightActivity::Hovering;
            if (!parseActivity(entry.asString(), activity, err))
                return false;
            out.activities.push_back(activity);
        }
    }
    if (const JsonValue *cells = value.find("cells")) {
        if (!cells->isArray())
            return invalid(err, "cells must be an array");
        out.cells.clear();
        for (const JsonValue &entry : cells->items()) {
            if (!entry.isNumber() ||
                std::floor(entry.asNumber()) != entry.asNumber())
                return invalid(err,
                               "cells entries must be integers");
            out.cells.push_back(static_cast<int>(entry.asNumber()));
        }
    }
    double lo = out.capacityLoMah.value();
    double hi = out.capacityHiMah.value();
    double step = out.capacityStepMah.value();
    double sensor_weight = out.sensorWeightG.value();
    double sensor_power = out.sensorPowerW.value();
    double payload = out.payloadG.value();
    std::string esc_name;
    if (!readDouble(value, "capacity_lo_mah", lo, err) ||
        !readDouble(value, "capacity_hi_mah", hi, err) ||
        !readDouble(value, "capacity_step_mah", step, err) ||
        !readDouble(value, "twr", out.twr, err) ||
        !readString(value, "esc_class", esc_name, err) ||
        !readDouble(value, "sensor_weight_g", sensor_weight, err) ||
        !readDouble(value, "sensor_power_w", sensor_power, err) ||
        !readDouble(value, "payload_g", payload, err))
        return false;
    if (!esc_name.empty() &&
        !parseEscClass(esc_name, out.escClass, err))
        return false;
    out.capacityLoMah = Quantity<MilliampHours>(lo);
    out.capacityHiMah = Quantity<MilliampHours>(hi);
    out.capacityStepMah = Quantity<MilliampHours>(step);
    out.sensorWeightG = Quantity<Grams>(sensor_weight);
    out.sensorPowerW = Quantity<Watts>(sensor_power);
    out.payloadG = Quantity<Grams>(payload);
    return true;
}

std::string
serializeSpec(const SweepSpec &spec)
{
    std::string out = "{\"airframes\": [";
    for (std::size_t i = 0; i < spec.airframes.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "{\"wheelbase_mm\": " +
               jsonNumber(spec.airframes[i].wheelbaseMm.value());
        out += ", \"prop_diameter_in\": " +
               jsonNumber(spec.airframes[i].propDiameterIn.value());
        out += "}";
    }
    out += "], \"boards\": [";
    for (std::size_t i = 0; i < spec.boards.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += serializeBoard(spec.boards[i]);
    }
    out += "], \"activities\": [";
    for (std::size_t i = 0; i < spec.activities.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += jsonQuote(activityName(spec.activities[i]));
    }
    out += "], \"cells\": [";
    for (std::size_t i = 0; i < spec.cells.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(spec.cells[i]);
    }
    out += "], \"capacity_lo_mah\": " +
           jsonNumber(spec.capacityLoMah.value());
    out += ", \"capacity_hi_mah\": " +
           jsonNumber(spec.capacityHiMah.value());
    out += ", \"capacity_step_mah\": " +
           jsonNumber(spec.capacityStepMah.value());
    out += ", \"twr\": " + jsonNumber(spec.twr);
    out += ", \"esc_class\": " +
           jsonQuote(escClassName(spec.escClass));
    out += ", \"sensor_weight_g\": " +
           jsonNumber(spec.sensorWeightG.value());
    out += ", \"sensor_power_w\": " +
           jsonNumber(spec.sensorPowerW.value());
    out += ", \"payload_g\": " + jsonNumber(spec.payloadG.value());
    out += "}";
    return out;
}

std::string
serializeResult(const DesignResult &result)
{
    if (!result.feasible) {
        return "{\"feasible\": false, \"reason\": " +
               jsonQuote(result.infeasibleReason) + "}";
    }
    std::string out = "{\"feasible\": true";
    out += ", \"total_weight_g\": " +
           jsonNumber(result.totalWeightG.value());
    out += ", \"basic_weight_g\": " +
           jsonNumber(result.basicWeightG.value());
    out += ", \"battery_weight_g\": " +
           jsonNumber(result.batteryWeightG.value());
    out += ", \"motor_kv\": " + jsonNumber(result.motor.kv);
    out += ", \"max_power_w\": " +
           jsonNumber(result.maxPowerW.value());
    out += ", \"avg_power_w\": " +
           jsonNumber(result.avgPowerW.value());
    out += ", \"usable_energy_wh\": " +
           jsonNumber(result.usableEnergyWh.value());
    out += ", \"flight_time_min\": " +
           jsonNumber(result.flightTimeMin.value());
    out += ", \"compute_power_fraction\": " +
           jsonNumber(result.computePowerFraction);
    out += "}";
    return out;
}

bool
parseMission(const JsonValue &value, codesign::MissionSpec &out,
             ErrorReply &err)
{
    if (!value.isObject())
        return invalid(err, "mission must be an object");
    std::string activity_name_in;
    double lo = out.capacityLoMah.value();
    double hi = out.capacityHiMah.value();
    double step = out.capacityStepMah.value();
    double payload = out.payloadG.value();
    if (!readString(value, "name", out.name, err) ||
        !readDouble(value, "target_rate_hz", out.targetRateHz,
                    err) ||
        !readDouble(value, "capacity_lo_mah", lo, err) ||
        !readDouble(value, "capacity_hi_mah", hi, err) ||
        !readDouble(value, "capacity_step_mah", step, err) ||
        !readDouble(value, "payload_g", payload, err) ||
        !readString(value, "activity", activity_name_in, err))
        return false;
    if (!activity_name_in.empty() &&
        !parseActivity(activity_name_in, out.activity, err))
        return false;
    if (const JsonValue *ops = value.find("per_frame_ops")) {
        if (!ops->isArray() ||
            ops->items().size() != out.perFrameOps.size())
            return invalid(err, "per_frame_ops must be an array of " +
                                    std::to_string(
                                        out.perFrameOps.size()) +
                                    " numbers");
        std::size_t i = 0;
        for (const JsonValue &entry : ops->items()) {
            if (!entry.isNumber())
                return invalid(
                    err, "per_frame_ops entries must be numbers");
            out.perFrameOps[i++] = entry.asNumber();
        }
    }
    if (const JsonValue *wheelbases = value.find("wheelbases_mm")) {
        if (!wheelbases->isArray())
            return invalid(err, "wheelbases_mm must be an array");
        out.wheelbasesMm.clear();
        for (const JsonValue &entry : wheelbases->items()) {
            if (!entry.isNumber())
                return invalid(
                    err, "wheelbases_mm entries must be numbers");
            out.wheelbasesMm.push_back(
                Quantity<Millimeters>(entry.asNumber()));
        }
    }
    if (const JsonValue *cells = value.find("cells")) {
        if (!cells->isArray())
            return invalid(err, "cells must be an array");
        out.cells.clear();
        for (const JsonValue &entry : cells->items()) {
            if (!entry.isNumber() ||
                std::floor(entry.asNumber()) != entry.asNumber())
                return invalid(err,
                               "cells entries must be integers");
            out.cells.push_back(static_cast<int>(entry.asNumber()));
        }
    }
    out.capacityLoMah = Quantity<MilliampHours>(lo);
    out.capacityHiMah = Quantity<MilliampHours>(hi);
    out.capacityStepMah = Quantity<MilliampHours>(step);
    out.payloadG = Quantity<Grams>(payload);
    return true;
}

std::string
serializeMission(const codesign::MissionSpec &mission)
{
    std::string out = "{";
    out += "\"name\": " + jsonQuote(mission.name);
    out += ", \"target_rate_hz\": " +
           jsonNumber(mission.targetRateHz);
    out += ", \"per_frame_ops\": [";
    for (std::size_t i = 0; i < mission.perFrameOps.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += jsonNumber(mission.perFrameOps[i]);
    }
    out += "], \"wheelbases_mm\": [";
    for (std::size_t i = 0; i < mission.wheelbasesMm.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += jsonNumber(mission.wheelbasesMm[i].value());
    }
    out += "], \"cells\": [";
    for (std::size_t i = 0; i < mission.cells.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(mission.cells[i]);
    }
    out += "], \"capacity_lo_mah\": " +
           jsonNumber(mission.capacityLoMah.value());
    out += ", \"capacity_hi_mah\": " +
           jsonNumber(mission.capacityHiMah.value());
    out += ", \"capacity_step_mah\": " +
           jsonNumber(mission.capacityStepMah.value());
    out += ", \"activity\": " +
           jsonQuote(activityName(mission.activity));
    out += ", \"payload_g\": " +
           jsonNumber(mission.payloadG.value());
    out += "}";
    return out;
}

/**
 * One explore axis.  Continuous kinds carry the lattice ladder
 * (`{"axis": "twr", "lo": 1.5, "step": 0.5, "count": 4}`);
 * enumerated kinds carry their value list (`{"axis": "cells",
 * "values": [3, 4]}`, `{"axis": "board", "boards": [...]}`,
 * `{"axis": "activity", "values": ["hovering"]}`).
 */
bool
parseAxis(const JsonValue &value, explore::AxisSpec &out,
          ErrorReply &err)
{
    if (!value.isObject())
        return invalid(err, "axes entries must be objects");
    std::string kind_name;
    if (!readString(value, "axis", kind_name, err))
        return false;
    if (kind_name.empty())
        return invalid(err, "axis entries require an axis name");
    if (!explore::parseAxisKind(kind_name, out.kind))
        return invalid(err, "unknown axis '" + kind_name + "'");
    switch (out.kind) {
    case explore::AxisKind::Cells: {
        const JsonValue *values = value.find("values");
        if (!values || !values->isArray())
            return invalid(err, "cells axis requires a values array");
        out.cells.clear();
        for (const JsonValue &entry : values->items()) {
            if (!entry.isNumber() ||
                std::floor(entry.asNumber()) != entry.asNumber())
                return invalid(
                    err, "cells axis values must be integers");
            out.cells.push_back(static_cast<int>(entry.asNumber()));
        }
        return true;
    }
    case explore::AxisKind::Board: {
        const JsonValue *boards = value.find("boards");
        if (!boards || !boards->isArray())
            return invalid(err, "board axis requires a boards array");
        out.boards.clear();
        for (const JsonValue &entry : boards->items()) {
            ComputeBoardRecord board;
            if (!parseBoard(entry, board, err))
                return false;
            out.boards.push_back(std::move(board));
        }
        return true;
    }
    case explore::AxisKind::Activity: {
        const JsonValue *values = value.find("values");
        if (!values || !values->isArray())
            return invalid(err,
                           "activity axis requires a values array");
        out.activities.clear();
        for (const JsonValue &entry : values->items()) {
            if (!entry.isString())
                return invalid(
                    err, "activity axis values must be strings");
            FlightActivity activity = FlightActivity::Hovering;
            if (!parseActivity(entry.asString(), activity, err))
                return false;
            out.activities.push_back(activity);
        }
        return true;
    }
    default:
        break;
    }
    if (!readDouble(value, "lo", out.lo, err) ||
        !readDouble(value, "step", out.step, err) ||
        !readSize(value, "count", out.count, err))
        return false;
    return true;
}

std::string
serializeAxis(const explore::AxisSpec &axis)
{
    std::string out = "{\"axis\": ";
    out += jsonQuote(explore::axisKindName(axis.kind));
    switch (axis.kind) {
    case explore::AxisKind::Cells:
        out += ", \"values\": [";
        for (std::size_t i = 0; i < axis.cells.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += std::to_string(axis.cells[i]);
        }
        out += "]";
        break;
    case explore::AxisKind::Board:
        out += ", \"boards\": [";
        for (std::size_t i = 0; i < axis.boards.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += serializeBoard(axis.boards[i]);
        }
        out += "]";
        break;
    case explore::AxisKind::Activity:
        out += ", \"values\": [";
        for (std::size_t i = 0; i < axis.activities.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += jsonQuote(activityName(axis.activities[i]));
        }
        out += "]";
        break;
    default:
        out += ", \"lo\": " + jsonNumber(axis.lo);
        out += ", \"step\": " + jsonNumber(axis.step);
        out += ", \"count\": " + std::to_string(axis.count);
        break;
    }
    out += "}";
    return out;
}

bool
parseSpace(const JsonValue &value, explore::ExploreSpace &out,
           ErrorReply &err)
{
    if (!value.isObject())
        return invalid(err, "space must be an object");
    if (const JsonValue *base = value.find("base")) {
        if (!parsePoint(*base, out.base, err))
            return false;
    }
    const JsonValue *axes = value.find("axes");
    if (!axes || !axes->isArray())
        return invalid(err, "space requires an axes array");
    out.axes.clear();
    for (const JsonValue &entry : axes->items()) {
        explore::AxisSpec axis;
        if (!parseAxis(entry, axis, err))
            return false;
        out.axes.push_back(std::move(axis));
    }
    return true;
}

std::string
serializeSpace(const explore::ExploreSpace &space)
{
    std::string out = "{\"base\": " + serializePoint(space.base);
    out += ", \"axes\": [";
    for (std::size_t i = 0; i < space.axes.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += serializeAxis(space.axes[i]);
    }
    out += "]}";
    return out;
}

bool
parseExploreOptions(const JsonValue &value,
                    explore::ExploreOptions &out, ErrorReply &err)
{
    if (!value.isObject())
        return invalid(err, "options must be an object");
    std::string sampler_name;
    if (!readString(value, "sampler", sampler_name, err))
        return false;
    if (!sampler_name.empty() &&
        !explore::parseSamplerKind(sampler_name, out.sampler))
        return invalid(err,
                       "unknown sampler '" + sampler_name + "'");
    return readU64(value, "seed", out.seed, err) &&
           readSize(value, "initial_samples", out.initialSamples,
                    err) &&
           readSize(value, "round_evaluations",
                    out.roundEvaluations, err) &&
           readSize(value, "max_evaluations", out.maxEvaluations,
                    err) &&
           readSize(value, "max_rounds", out.maxRounds, err) &&
           readSize(value, "neighbor_radius", out.neighborRadius,
                    err) &&
           readBool(value, "bisect_boundary", out.bisectBoundary,
                    err);
}

std::string
serializeExploreOptions(const explore::ExploreOptions &options)
{
    std::string out = "{\"sampler\": ";
    out += jsonQuote(explore::samplerKindName(options.sampler));
    out += ", \"seed\": " + std::to_string(options.seed);
    out += ", \"initial_samples\": " +
           std::to_string(options.initialSamples);
    out += ", \"round_evaluations\": " +
           std::to_string(options.roundEvaluations);
    out += ", \"max_evaluations\": " +
           std::to_string(options.maxEvaluations);
    out += ", \"max_rounds\": " + std::to_string(options.maxRounds);
    out += ", \"neighbor_radius\": " +
           std::to_string(options.neighborRadius);
    out += std::string(", \"bisect_boundary\": ") +
           (options.bisectBoundary ? "true" : "false");
    out += "}";
    return out;
}

bool
parseUncertaintyOptions(const JsonValue &value,
                        explore::UncertaintyOptions &out,
                        ErrorReply &err)
{
    if (!value.isObject())
        return invalid(err, "options must be an object");
    return readU64(value, "seed", out.seed, err) &&
           readSize(value, "samples", out.samples, err) &&
           readInt(value, "scatter_replicates",
                   out.scatterReplicates, err);
}

std::string
serializeUncertaintyOptions(
    const explore::UncertaintyOptions &options)
{
    std::string out =
        "{\"seed\": " + std::to_string(options.seed);
    out += ", \"samples\": " + std::to_string(options.samples);
    out += ", \"scatter_replicates\": " +
           std::to_string(options.scatterReplicates);
    out += "}";
    return out;
}

bool
parseGate(const JsonValue &value, explore::GateSpec &out,
          ErrorReply &err)
{
    if (!value.isObject())
        return invalid(err, "gates entries must be objects");
    std::string metric_name, op_name;
    if (!readString(value, "metric", metric_name, err) ||
        !readString(value, "op", op_name, err) ||
        !readDouble(value, "threshold", out.threshold, err) ||
        !readDouble(value, "min_probability", out.minProbability,
                    err))
        return false;
    if (!metric_name.empty() &&
        !explore::parseGateMetric(metric_name, out.metric))
        return invalid(err, "unknown metric '" + metric_name + "'");
    if (!op_name.empty() && !explore::parseGateOp(op_name, out.op))
        return invalid(err, "unknown op '" + op_name + "'");
    return true;
}

std::string
serializeGate(const explore::GateSpec &gate)
{
    std::string out = "{\"metric\": ";
    out += jsonQuote(explore::gateMetricName(gate.metric));
    out += ", \"op\": " + jsonQuote(explore::gateOpName(gate.op));
    out += ", \"threshold\": " + jsonNumber(gate.threshold);
    out += ", \"min_probability\": " +
           jsonNumber(gate.minProbability);
    out += "}";
    return out;
}

bool
parseRisk(const JsonValue &doc, explore::RiskQuery &out,
          ErrorReply &err)
{
    const JsonValue *point = doc.find("point");
    if (!point)
        return invalid(err, "risk query requires a point");
    if (!parsePoint(*point, out.point, err))
        return false;
    if (const JsonValue *options = doc.find("options")) {
        if (!parseUncertaintyOptions(*options, out.options, err))
            return false;
    }
    if (const JsonValue *gates = doc.find("gates")) {
        if (!gates->isArray())
            return invalid(err, "gates must be an array");
        out.gates.clear();
        for (const JsonValue &entry : gates->items()) {
            explore::GateSpec gate;
            if (!parseGate(entry, gate, err))
                return false;
            out.gates.push_back(gate);
        }
    }
    if (const JsonValue *quantiles = doc.find("quantiles")) {
        if (!quantiles->isArray())
            return invalid(err, "quantiles must be an array");
        out.quantiles.clear();
        for (const JsonValue &entry : quantiles->items()) {
            if (!entry.isNumber())
                return invalid(err,
                               "quantiles entries must be numbers");
            out.quantiles.push_back(entry.asNumber());
        }
    }
    return true;
}

std::string
serializeChoice(const codesign::CodesignChoice &choice)
{
    if (!choice.feasible)
        return "{\"feasible\": false}";
    const codesign::ComputeConfig &cfg = choice.config;
    std::string out = "{\"feasible\": true";
    out += ", \"board\": " + jsonQuote(cfg.boardName);
    out += ", \"platform\": " +
           jsonQuote(platformSpec(cfg.platform).name);
    out += ", \"split\": " +
           jsonQuote(codesign::offloadSplitName(cfg.split));
    out += ", \"rate_hz\": " + jsonNumber(cfg.rateHz);
    out += ", \"sustained_fps\": " + jsonNumber(cfg.sustainedFps);
    out += ", \"compute_power_w\": " +
           jsonNumber(cfg.computePowerW.value());
    out += ", \"compute_weight_g\": " +
           jsonNumber(cfg.computeWeightG.value());
    out += ", \"wheelbase_mm\": " +
           jsonNumber(choice.design.inputs.wheelbaseMm.value());
    out += ", \"cells\": " +
           std::to_string(choice.design.inputs.cells);
    out += ", \"capacity_mah\": " +
           jsonNumber(choice.design.inputs.capacityMah.value());
    out += ", \"result\": " + serializeResult(choice.design);
    out += "}";
    return out;
}

std::string
replyHead(std::uint64_t id, bool ok, const char *kind)
{
    std::string out = "{\"id\": " + std::to_string(id);
    out += ok ? ", \"ok\": true" : ", \"ok\": false";
    if (kind) {
        out += ", \"kind\": ";
        out += jsonQuote(kind);
    }
    return out;
}

} // namespace

const char *
queryKindName(QueryKind kind)
{
    switch (kind) {
    case QueryKind::Design: return "design";
    case QueryKind::Sweep: return "sweep";
    case QueryKind::Pareto: return "pareto";
    case QueryKind::Codesign: return "codesign";
    case QueryKind::Explore: return "explore";
    case QueryKind::Risk: return "risk";
    }
    panic("queryKindName: corrupt kind");
    return "";
}

const char *
queryClassName(QueryClass cls)
{
    return cls == QueryClass::Interactive ? "interactive" : "batch";
}

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::ParseError: return "parse_error";
    case ErrorCode::InvalidRequest: return "invalid_request";
    case ErrorCode::TooLarge: return "too_large";
    case ErrorCode::RateLimited: return "rate_limited";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::Internal: return "internal";
    }
    panic("errorCodeName: corrupt code");
    return "";
}

bool
parseRequest(const std::string &frame, Request &out, ErrorReply &err)
{
    out = Request{};
    std::string parse_error;
    const std::optional<JsonValue> doc =
        parseJson(frame, &parse_error);
    if (!doc) {
        err.code = ErrorCode::ParseError;
        err.message = parse_error;
        return false;
    }
    if (!doc->isObject()) {
        err.code = ErrorCode::ParseError;
        err.message = "request frame must be a JSON object";
        return false;
    }

    // Pull the id first so every later error can echo it.
    const JsonValue *id = doc->find("id");
    if (!id || !id->isNumber())
        return invalid(err, "id must be a number");
    const double id_value = id->asNumber();
    if (std::floor(id_value) != id_value || id_value < 0.0 ||
        id_value > kMaxId)
        return invalid(err,
                       "id must be a non-negative integer < 2^53");
    out.id = static_cast<std::uint64_t>(id_value);

    const JsonValue *kind = doc->find("kind");
    if (!kind || !kind->isString())
        return invalid(err, "kind must be a string");
    const std::string &kind_name = kind->asString();
    if (kind_name == "design")
        out.kind = QueryKind::Design;
    else if (kind_name == "sweep")
        out.kind = QueryKind::Sweep;
    else if (kind_name == "pareto")
        out.kind = QueryKind::Pareto;
    else if (kind_name == "codesign")
        out.kind = QueryKind::Codesign;
    else if (kind_name == "explore")
        out.kind = QueryKind::Explore;
    else if (kind_name == "risk")
        out.kind = QueryKind::Risk;
    else
        return invalid(err, "unknown query kind '" + kind_name + "'");

    std::string cls_name;
    if (!readString(*doc, "class", cls_name, err))
        return false;
    if (cls_name.empty() || cls_name == "interactive")
        out.cls = QueryClass::Interactive;
    else if (cls_name == "batch")
        out.cls = QueryClass::Batch;
    else
        return invalid(err, "unknown class '" + cls_name + "'");

    if (out.kind == QueryKind::Design) {
        const JsonValue *point = doc->find("point");
        if (!point)
            return invalid(err, "design query requires a point");
        return parsePoint(*point, out.point, err);
    }
    if (out.kind == QueryKind::Codesign) {
        const JsonValue *mission = doc->find("mission");
        if (!mission)
            return invalid(err,
                           "codesign query requires a mission");
        return parseMission(*mission, out.mission, err);
    }
    if (out.kind == QueryKind::Explore) {
        const JsonValue *space = doc->find("space");
        if (!space)
            return invalid(err, "explore query requires a space");
        if (!parseSpace(*space, out.explore.space, err))
            return false;
        if (const JsonValue *options = doc->find("options")) {
            if (!parseExploreOptions(*options, out.explore.options,
                                     err))
                return false;
        }
        return true;
    }
    if (out.kind == QueryKind::Risk)
        return parseRisk(*doc, out.risk, err);
    const JsonValue *spec = doc->find("spec");
    if (!spec)
        return invalid(err, "sweep/pareto query requires a spec");
    return parseSpec(*spec, out.spec, err);
}

std::string
serializeRequest(const Request &request)
{
    std::string out = "{\"id\": " + std::to_string(request.id);
    out += ", \"kind\": " + jsonQuote(queryKindName(request.kind));
    out +=
        ", \"class\": " + jsonQuote(queryClassName(request.cls));
    if (request.kind == QueryKind::Design)
        out += ", \"point\": " + serializePoint(request.point);
    else if (request.kind == QueryKind::Codesign)
        out += ", \"mission\": " + serializeMission(request.mission);
    else if (request.kind == QueryKind::Explore) {
        out += ", \"space\": " + serializeSpace(request.explore.space);
        out += ", \"options\": " +
               serializeExploreOptions(request.explore.options);
    } else if (request.kind == QueryKind::Risk) {
        out += ", \"point\": " + serializePoint(request.risk.point);
        out += ", \"options\": " +
               serializeUncertaintyOptions(request.risk.options);
        out += ", \"gates\": [";
        for (std::size_t i = 0; i < request.risk.gates.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += serializeGate(request.risk.gates[i]);
        }
        out += "], \"quantiles\": [";
        for (std::size_t i = 0; i < request.risk.quantiles.size();
             ++i) {
            if (i > 0)
                out += ", ";
            out += jsonNumber(request.risk.quantiles[i]);
        }
        out += "]";
    } else
        out += ", \"spec\": " + serializeSpec(request.spec);
    out += "}";
    return out;
}

std::string
serializeErrorReply(std::uint64_t id, const ErrorReply &err)
{
    std::string out = replyHead(id, false, nullptr);
    out += ", \"error\": {\"code\": " +
           jsonQuote(errorCodeName(err.code));
    out += ", \"message\": " + jsonQuote(err.message) + "}}";
    return out;
}

std::string
serializeDesignReply(std::uint64_t id, const DesignResult &result)
{
    std::string out = replyHead(id, true, "design");
    out += ", \"result\": " + serializeResult(result) + "}";
    return out;
}

std::string
serializeSweepReply(std::uint64_t id,
                    const std::vector<DesignResult> &points,
                    std::size_t feasible_count,
                    const std::vector<std::size_t> &frontier)
{
    std::string out = replyHead(id, true, "sweep");
    out += ", \"grid_points\": " + std::to_string(points.size());
    out += ", \"feasible_count\": " + std::to_string(feasible_count);
    out += ", \"frontier\": [";
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(frontier[i]);
    }
    out += "], \"results\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += serializeResult(points[i]);
    }
    out += "]}";
    return out;
}

std::string
serializeCodesignReply(std::uint64_t id,
                       const codesign::CodesignOutcome &outcome)
{
    std::string out = replyHead(id, true, "codesign");
    out += ", \"config_count\": " +
           std::to_string(outcome.configCount);
    out += ", \"grid_points\": " +
           std::to_string(outcome.gridPoints);
    out += ", \"recommended\": " +
           serializeChoice(outcome.recommended);
    out += ", \"per_platform\": [";
    for (std::size_t i = 0; i < outcome.perPlatform.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += serializeChoice(outcome.perPlatform[i]);
    }
    out += "], \"per_split\": [";
    for (std::size_t i = 0; i < outcome.perSplit.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += serializeChoice(outcome.perSplit[i]);
    }
    out += "], \"best_sustained_fps\": [";
    for (std::size_t i = 0; i < outcome.bestSustainedFps.size();
         ++i) {
        if (i > 0)
            out += ", ";
        out += jsonNumber(outcome.bestSustainedFps[i]);
    }
    out += "]}";
    return out;
}

std::string
serializeExploreReply(std::uint64_t id,
                      const explore::ExploreResult &result)
{
    std::string out = replyHead(id, true, "explore");
    out += ", \"space_points\": " +
           std::to_string(result.spacePoints);
    out += ", \"evaluations\": " +
           std::to_string(result.evaluations());
    out += ", \"rounds\": " + std::to_string(result.rounds.size());
    out += result.converged ? ", \"converged\": true"
                            : ", \"converged\": false";
    out += ", \"frontier\": [";
    for (std::size_t i = 0; i < result.frontier.size(); ++i) {
        if (i > 0)
            out += ", ";
        const DesignResult &res = result.points[result.frontier[i]];
        out += "{\"point\": " + serializePoint(res.inputs);
        out += ", \"result\": " + serializeResult(res) + "}";
    }
    out += "], \"incumbent\": ";
    if (result.incumbent < result.points.size()) {
        const DesignResult &best = result.points[result.incumbent];
        out += "{\"point\": " + serializePoint(best.inputs);
        out += ", \"result\": " + serializeResult(best) + "}";
    } else {
        out += "null";
    }
    out += "}";
    return out;
}

std::string
serializeRiskReply(std::uint64_t id,
                   const explore::RiskOutcome &outcome,
                   const std::vector<double> &quantiles)
{
    const explore::UncertaintyResult &unc = outcome.uncertainty;
    std::string out = replyHead(id, true, "risk");
    out += ", \"nominal\": " + serializeResult(unc.nominal);
    out += ", \"samples\": " + std::to_string(unc.samples);
    out += ", \"feasible_samples\": " +
           std::to_string(unc.feasibleSamples);
    out += ", \"feasible_fraction\": " +
           jsonNumber(unc.feasibleFraction());
    out += ", \"gates\": [";
    for (std::size_t i = 0; i < outcome.report.gates.size(); ++i) {
        if (i > 0)
            out += ", ";
        const explore::GateOutcome &gate = outcome.report.gates[i];
        std::string entry = serializeGate(gate.spec);
        entry.pop_back(); // reopen the gate object
        entry += ", \"probability\": " + jsonNumber(gate.probability);
        entry += gate.pass ? ", \"pass\": true}" : ", \"pass\": false}";
        out += entry;
    }
    out += outcome.report.allPass ? "], \"all_pass\": true"
                                  : "], \"all_pass\": false";
    // Quantiles read off the feasible-sample ECDFs; with nothing
    // feasible there is no distribution to read, so the list is
    // empty regardless of what was requested.
    out += ", \"quantiles\": [";
    if (!unc.flightTimeMin.empty()) {
        for (std::size_t i = 0; i < quantiles.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += "{\"q\": " + jsonNumber(quantiles[i]);
            out += ", \"flight_time_min\": " +
                   jsonNumber(unc.flightTimeMin.quantile(
                       quantiles[i]));
            out += ", \"total_weight_g\": " +
                   jsonNumber(
                       unc.totalWeightG.quantile(quantiles[i]));
            out += "}";
        }
    }
    out += "]}";
    return out;
}

std::string
serializeParetoReply(std::uint64_t id,
                     const std::vector<DesignResult> &points,
                     const std::vector<std::size_t> &frontier)
{
    std::string out = replyHead(id, true, "pareto");
    out += ", \"grid_points\": " + std::to_string(points.size());
    out += ", \"frontier\": [";
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(frontier[i]);
    }
    out += "], \"results\": [";
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += serializeResult(points[frontier[i]]);
    }
    out += "]}";
    return out;
}

} // namespace dronedse::serve
