/**
 * @file
 * LocalTransport: a virtual-time, in-process stand-in for the TCP
 * server.
 *
 * Drives the exact `Service::ingest` / `Service::processOne`
 * pipeline the socket server runs, but against a manual clock and a
 * simulated per-query service time, so protocol, planner, and
 * admission behaviour — including overload shedding, which depends
 * on queue-wait distributions — are reproducible to the byte in
 * tests.  The overload acceptance test (ISSUE 5) models a closed
 * service loop at 2x capacity with this class: arrivals outpace the
 * drain, the bounded queue fills, waits cross the p95 shed
 * threshold, and the controller must shed instead of letting p99
 * wait grow without bound.
 */

#ifndef DRONEDSE_SERVE_TRANSPORT_HH
#define DRONEDSE_SERVE_TRANSPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/service.hh"

namespace dronedse::serve {

/** One completed exchange, in completion order. */
struct LocalExchange
{
    std::uint64_t conn = 0;
    std::string reply;
    /** Virtual time the reply was produced. */
    double t = 0.0;
    /** True when the reply came straight from ingest (rejected). */
    bool rejected = false;
};

class LocalTransport
{
  public:
    /**
     * `service_time` is the simulated execution cost (virtual
     * seconds) charged to the clock per dequeued query — the knob
     * that sets the server's modelled capacity.
     */
    explicit LocalTransport(Service &service,
                            double service_time = 0.0);

    /** Advance the virtual clock. */
    void advance(double dt);
    double now() const { return now_; }

    /**
     * Submit one frame at the current virtual time from connection
     * `conn`.  Rejections complete immediately; admitted frames
     * wait in the service queue for `drain`.
     */
    void submit(const std::string &frame, std::uint64_t conn = 0);

    /**
     * Dequeue and execute up to `max_items` queued queries,
     * advancing the clock by the service time for each.  Returns
     * the number executed.
     */
    std::size_t drain(std::size_t max_items = SIZE_MAX);

    /** Submit + drain one frame; returns its reply. */
    std::string roundTrip(const std::string &frame,
                          std::uint64_t conn = 0);

    /** Every completed exchange so far, in completion order. */
    const std::vector<LocalExchange> &exchanges() const
    {
        return exchanges_;
    }

    /** Replies only (convenience for byte comparisons). */
    std::vector<std::string> replies() const;

    Service &service() { return service_; }

  private:
    Service &service_;
    double serviceTime_;
    double now_ = 0.0;
    std::vector<LocalExchange> exchanges_;
};

} // namespace dronedse::serve

#endif // DRONEDSE_SERVE_TRANSPORT_HH
