#include "serve/planner.hh"

#include <cmath>

#include "components/battery.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"

namespace dronedse::serve {

namespace {

bool
invalid(ErrorReply &err, const std::string &message)
{
    err.code = ErrorCode::InvalidRequest;
    err.message = message;
    return false;
}

bool
finitePositive(double v)
{
    return std::isfinite(v) && v > 0.0;
}

bool
finiteNonNegative(double v)
{
    return std::isfinite(v) && v >= 0.0;
}

} // namespace

QueryPlanner::QueryPlanner(engine::SweepEngine &engine,
                           PlannerLimits limits)
    : engine_(engine), limits_(limits), codesign_(engine)
{
}

bool
QueryPlanner::validate(const Request &request, ErrorReply &err) const
{
    const auto check_board = [&](const ComputeBoardRecord &board) {
        if (!finiteNonNegative(board.weightG) ||
            !finiteNonNegative(board.powerW))
            return invalid(err,
                           "board weight/power must be finite and "
                           ">= 0");
        return true;
    };
    const auto check_cells = [&](int cells) {
        if (cells < kMinCells || cells > kMaxCells)
            return invalid(err,
                           "cells must be in [" +
                               std::to_string(kMinCells) + ", " +
                               std::to_string(kMaxCells) + "]");
        return true;
    };
    const auto check_twr = [&](double twr) {
        if (!std::isfinite(twr) || twr < limits_.minTwr ||
            twr > limits_.maxTwr)
            return invalid(err, "twr out of accepted range");
        return true;
    };
    const auto check_wheelbase = [&](Quantity<Millimeters> wb) {
        if (!finitePositive(wb.value()) ||
            wb.value() > limits_.maxWheelbaseMm.value())
            return invalid(err, "wheelbase_mm out of accepted range");
        return true;
    };
    const auto check_aux = [&](const char *what, double v) {
        if (!finiteNonNegative(v))
            return invalid(err, std::string(what) +
                                    " must be finite and >= 0");
        return true;
    };

    if (request.kind == QueryKind::Design) {
        const DesignInputs &point = request.point;
        if (!check_wheelbase(point.wheelbaseMm) ||
            !check_cells(point.cells) || !check_twr(point.twr))
            return false;
        if (!finitePositive(point.capacityMah.value()))
            return invalid(err, "capacity_mah must be > 0");
        return check_aux("prop_diameter_in",
                         point.propDiameterIn.value()) &&
               check_board(point.compute) &&
               check_aux("sensor_weight_g",
                         point.sensorWeightG.value()) &&
               check_aux("sensor_power_w",
                         point.sensorPowerW.value()) &&
               check_aux("payload_g", point.payloadG.value());
    }

    if (request.kind == QueryKind::Explore) {
        const explore::ExploreQuery &query = request.explore;
        // validateSpace owns the structural rules (arity, duplicate
        // axes, lattice sanity); the planner adds service limits and
        // the same physical-range checks a design point gets, so the
        // driver's own fatal() guards can never fire on an admitted
        // request.
        const std::string space_err =
            explore::validateSpace(query.space);
        if (!space_err.empty())
            return invalid(err, "explore space: " + space_err);
        for (const explore::AxisSpec &axis : query.space.axes) {
            if (axis.size() > limits_.maxAxisEntries)
                return invalid(err,
                               "explore axis exceeds max entries");
            const double hi =
                axis.lo +
                axis.step * static_cast<double>(
                                axis.count > 0 ? axis.count - 1 : 0);
            switch (axis.kind) {
            case explore::AxisKind::Wheelbase:
                if (!check_wheelbase(Quantity<Millimeters>(axis.lo)) ||
                    !check_wheelbase(Quantity<Millimeters>(hi)))
                    return false;
                break;
            case explore::AxisKind::Capacity:
                if (!finitePositive(axis.lo) || !finitePositive(hi))
                    return invalid(err,
                                   "capacity axis must stay > 0");
                break;
            case explore::AxisKind::Twr:
                if (!check_twr(axis.lo) || !check_twr(hi))
                    return false;
                break;
            case explore::AxisKind::Payload:
                if (!check_aux("payload axis", axis.lo) ||
                    !check_aux("payload axis", hi))
                    return false;
                break;
            case explore::AxisKind::Board:
                for (const ComputeBoardRecord &board : axis.boards) {
                    if (!check_board(board))
                        return false;
                }
                break;
            case explore::AxisKind::Cells:
            case explore::AxisKind::Activity:
                break; // validateSpace / parser already own these.
            }
        }
        // The base point fills every un-swept field; it must be as
        // physical as a standalone design query.
        const DesignInputs &base = query.space.base;
        if (!check_wheelbase(base.wheelbaseMm) ||
            !check_cells(base.cells) || !check_twr(base.twr))
            return false;
        if (!finitePositive(base.capacityMah.value()))
            return invalid(err, "base capacity_mah must be > 0");
        if (!check_aux("prop_diameter_in",
                       base.propDiameterIn.value()) ||
            !check_board(base.compute) ||
            !check_aux("sensor_weight_g",
                       base.sensorWeightG.value()) ||
            !check_aux("sensor_power_w",
                       base.sensorPowerW.value()) ||
            !check_aux("payload_g", base.payloadG.value()))
            return false;
        const explore::ExploreOptions &opts = query.options;
        if (opts.maxEvaluations == 0 ||
            opts.maxEvaluations > limits_.maxExploreEvaluations)
            return invalid(
                err, "max_evaluations must be in [1, " +
                         std::to_string(
                             limits_.maxExploreEvaluations) +
                         "]");
        if (opts.initialSamples == 0)
            return invalid(err, "initial_samples must be > 0");
        if (opts.roundEvaluations == 0)
            return invalid(err, "round_evaluations must be > 0");
        return true;
    }

    if (request.kind == QueryKind::Risk) {
        const explore::RiskQuery &query = request.risk;
        const DesignInputs &point = query.point;
        if (!check_wheelbase(point.wheelbaseMm) ||
            !check_cells(point.cells) || !check_twr(point.twr))
            return false;
        if (!finitePositive(point.capacityMah.value()))
            return invalid(err, "capacity_mah must be > 0");
        if (!check_aux("prop_diameter_in",
                       point.propDiameterIn.value()) ||
            !check_board(point.compute) ||
            !check_aux("sensor_weight_g",
                       point.sensorWeightG.value()) ||
            !check_aux("sensor_power_w",
                       point.sensorPowerW.value()) ||
            !check_aux("payload_g", point.payloadG.value()))
            return false;
        const explore::UncertaintyOptions &opts = query.options;
        if (opts.samples == 0 ||
            opts.samples > limits_.maxRiskSamples)
            return invalid(
                err, "samples must be in [1, " +
                         std::to_string(limits_.maxRiskSamples) +
                         "]");
        if (opts.scatterReplicates < 2 ||
            opts.scatterReplicates > limits_.maxScatterReplicates)
            return invalid(
                err, "scatter_replicates must be in [2, " +
                         std::to_string(
                             limits_.maxScatterReplicates) +
                         "]");
        if (query.gates.size() > limits_.maxAxisEntries ||
            query.quantiles.size() > limits_.maxAxisEntries)
            return invalid(err,
                           "gates/quantiles exceed max entries");
        for (const explore::GateSpec &gate : query.gates) {
            if (!std::isfinite(gate.threshold))
                return invalid(err,
                               "gate threshold must be finite");
            if (!std::isfinite(gate.minProbability) ||
                gate.minProbability < 0.0 ||
                gate.minProbability > 1.0)
                return invalid(
                    err, "gate min_probability must be in [0, 1]");
        }
        for (double q : query.quantiles) {
            if (!std::isfinite(q) || q < 0.0 || q > 1.0)
                return invalid(err,
                               "quantiles must be in [0, 1]");
        }
        return true;
    }

    if (request.kind == QueryKind::Codesign) {
        const codesign::MissionSpec &mission = request.mission;
        if (!finitePositive(mission.targetRateHz))
            return invalid(err, "target_rate_hz must be > 0");
        if (mission.wheelbasesMm.empty() || mission.cells.empty())
            return invalid(err,
                           "mission wheelbases_mm and cells must "
                           "be non-empty");
        if (mission.wheelbasesMm.size() > limits_.maxAxisEntries ||
            mission.cells.size() > limits_.maxAxisEntries)
            return invalid(err, "mission axis exceeds max entries");
        for (const Quantity<Millimeters> wb : mission.wheelbasesMm) {
            if (!check_wheelbase(wb))
                return false;
        }
        for (int cells : mission.cells) {
            if (!check_cells(cells))
                return false;
        }
        for (double ops : mission.perFrameOps) {
            if (!finitePositive(ops))
                return invalid(err,
                               "per_frame_ops must be finite and "
                               "> 0");
        }
        if (!finitePositive(mission.capacityLoMah.value()) ||
            !finitePositive(mission.capacityHiMah.value()) ||
            mission.capacityHiMah.value() <
                mission.capacityLoMah.value())
            return invalid(
                err, "capacity range must satisfy 0 < lo <= hi");
        if (!std::isfinite(mission.capacityStepMah.value()) ||
            mission.capacityStepMah.value() <
                limits_.minCapacityStepMah.value())
            return invalid(err, "capacity_step_mah below minimum");
        if (!check_aux("payload_g", mission.payloadG.value()))
            return false;
        // The compute-config axis is bounded by construction
        // (platforms x splits x rate ladder), so capping the
        // capacity axis bounds the whole expanded grid.
        const double capacity_steps =
            (mission.capacityHiMah.value() -
             mission.capacityLoMah.value()) /
            mission.capacityStepMah.value();
        if (capacity_steps >
            static_cast<double>(limits_.maxGridPoints))
            return invalid(err,
                           "capacity axis exceeds the grid cap");
        return true;
    }

    const SweepSpec &spec = request.spec;
    if (spec.airframes.empty() || spec.boards.empty() ||
        spec.activities.empty() || spec.cells.empty())
        return invalid(err,
                       "spec axes (airframes, boards, activities, "
                       "cells) must be non-empty");
    if (spec.airframes.size() > limits_.maxAxisEntries ||
        spec.boards.size() > limits_.maxAxisEntries ||
        spec.activities.size() > limits_.maxAxisEntries ||
        spec.cells.size() > limits_.maxAxisEntries)
        return invalid(err, "spec axis exceeds max entries");
    for (const SweepAirframe &airframe : spec.airframes) {
        if (!check_wheelbase(airframe.wheelbaseMm) ||
            !check_aux("prop_diameter_in",
                       airframe.propDiameterIn.value()))
            return false;
    }
    for (const ComputeBoardRecord &board : spec.boards) {
        if (!check_board(board))
            return false;
    }
    for (int cells : spec.cells) {
        if (!check_cells(cells))
            return false;
    }
    if (!check_twr(spec.twr))
        return false;
    if (!finitePositive(spec.capacityLoMah.value()) ||
        !finitePositive(spec.capacityHiMah.value()) ||
        spec.capacityHiMah.value() < spec.capacityLoMah.value())
        return invalid(err,
                       "capacity range must satisfy 0 < lo <= hi");
    if (!std::isfinite(spec.capacityStepMah.value()) ||
        spec.capacityStepMah.value() <
            limits_.minCapacityStepMah.value())
        return invalid(err, "capacity_step_mah below minimum");
    if (!check_aux("sensor_weight_g", spec.sensorWeightG.value()) ||
        !check_aux("sensor_power_w", spec.sensorPowerW.value()) ||
        !check_aux("payload_g", spec.payloadG.value()))
        return false;
    // Bound the capacity axis analytically before pointCount()
    // walks it — a hostile hi/step pair must not stall validation.
    const double capacity_steps =
        (spec.capacityHiMah.value() - spec.capacityLoMah.value()) /
        spec.capacityStepMah.value();
    if (capacity_steps > static_cast<double>(limits_.maxGridPoints))
        return invalid(err, "capacity axis exceeds the grid cap");
    if (spec.pointCount() > limits_.maxGridPoints)
        return invalid(err,
                       "grid expands to " +
                           std::to_string(spec.pointCount()) +
                           " points, cap is " +
                           std::to_string(limits_.maxGridPoints));
    return true;
}

template <typename T, typename MakeFn>
std::shared_ptr<T>
QueryPlanner::runSingleFlight(FlightTable<T> &table,
                              const std::string &key,
                              const char *span_name, MakeFn &&make)
{
    std::shared_ptr<InFlight<T>> flight;
    bool leader = false;
    {
        util::MutexLock lock(mutex_);
        auto &slot = table[key];
        if (!slot) {
            slot = std::make_shared<InFlight<T>>();
            leader = true;
        }
        flight = slot;
        if (leader)
            ++stats_.batchesLed;
        else
            ++stats_.coalesced;
    }

    if (leader) {
        obs::ScopedSpan span(span_name, "serve");
        auto value = std::make_shared<T>(make());
        {
            util::MutexLock lock(flight->mutex);
            flight->value = value;
            flight->done = true;
        }
        flight->cv.notifyAll();
        {
            util::MutexLock lock(mutex_);
            table.erase(key);
        }
        obs::metrics().counter("serve.batches.led").add(1);
        return value;
    }

    obs::metrics().counter("serve.batches.coalesced").add(1);
    util::MutexLock lock(flight->mutex);
    while (!flight->done)
        flight->cv.wait(flight->mutex);
    return flight->value;
}

std::shared_ptr<engine::SweepResult>
QueryPlanner::runCoalesced(const SweepSpec &spec)
{
    // The canonical spec serialization is the coalescing key: two
    // requests whose specs serialize identically expand to the
    // identical grid.
    Request key_request;
    key_request.kind = QueryKind::Sweep;
    key_request.spec = spec;
    return runSingleFlight(
        inflight_, serializeRequest(key_request), "serve.batch",
        [&] { return engine_.run(spec); });
}

std::shared_ptr<codesign::CodesignOutcome>
QueryPlanner::runCodesignCoalesced(
    const codesign::MissionSpec &mission)
{
    // Same key discipline: two codesign queries for byte-identical
    // missions share one search.
    Request key_request;
    key_request.kind = QueryKind::Codesign;
    key_request.mission = mission;
    return runSingleFlight(
        inflightCodesign_, serializeRequest(key_request),
        "serve.codesign", [&] { return codesign_.run(mission); });
}

std::shared_ptr<explore::ExploreResult>
QueryPlanner::runExploreCoalesced(const explore::ExploreQuery &query)
{
    // Byte-identical (space, options) pairs share one adaptive run;
    // distinct budgets over the same space still share work through
    // the engine's memo cache point by point.
    Request key_request;
    key_request.kind = QueryKind::Explore;
    key_request.explore = query;
    return runSingleFlight(
        inflightExplore_, serializeRequest(key_request),
        "serve.explore", [&] {
            explore::AdaptiveDriver driver(engine_, query.options);
            return driver.run(query.space);
        });
}

std::shared_ptr<explore::RiskOutcome>
QueryPlanner::runRiskCoalesced(const explore::RiskQuery &query)
{
    Request key_request;
    key_request.kind = QueryKind::Risk;
    key_request.risk = query;
    return runSingleFlight(
        inflightRisk_, serializeRequest(key_request), "serve.risk",
        [&] { return explore::runRiskQuery(query); });
}

std::string
QueryPlanner::execute(const Request &request)
{
    obs::ScopedSpan span("serve.execute", "serve");
    ErrorReply err;
    if (!validate(request, err)) {
        {
            util::MutexLock lock(mutex_);
            ++stats_.invalid;
        }
        obs::metrics().counter("serve.queries.invalid").add(1);
        return serializeErrorReply(request.id, err);
    }

    std::string reply;
    switch (request.kind) {
    case QueryKind::Design:
        reply = serializeDesignReply(request.id,
                                     engine_.solve(request.point));
        break;
    case QueryKind::Sweep: {
        const std::shared_ptr<engine::SweepResult> result =
            runCoalesced(request.spec);
        reply = serializeSweepReply(request.id, result->points,
                                    result->feasible.size(),
                                    result->frontier);
        break;
    }
    case QueryKind::Pareto: {
        const std::shared_ptr<engine::SweepResult> result =
            runCoalesced(request.spec);
        reply = serializeParetoReply(request.id, result->points,
                                     result->frontier);
        break;
    }
    case QueryKind::Codesign: {
        const std::shared_ptr<codesign::CodesignOutcome> outcome =
            runCodesignCoalesced(request.mission);
        reply = serializeCodesignReply(request.id, *outcome);
        break;
    }
    case QueryKind::Explore: {
        const std::shared_ptr<explore::ExploreResult> result =
            runExploreCoalesced(request.explore);
        reply = serializeExploreReply(request.id, *result);
        break;
    }
    case QueryKind::Risk: {
        const std::shared_ptr<explore::RiskOutcome> outcome =
            runRiskCoalesced(request.risk);
        reply = serializeRiskReply(request.id, *outcome,
                                   request.risk.quantiles);
        break;
    }
    }
    {
        util::MutexLock lock(mutex_);
        ++stats_.executed;
    }
    obs::metrics().counter("serve.queries.executed").add(1);
    return reply;
}

PlannerStats
QueryPlanner::stats() const
{
    util::MutexLock lock(mutex_);
    return stats_;
}

} // namespace dronedse::serve
