#include "serve/planner.hh"

#include <cmath>

#include "components/battery.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"

namespace dronedse::serve {

namespace {

bool
invalid(ErrorReply &err, const std::string &message)
{
    err.code = ErrorCode::InvalidRequest;
    err.message = message;
    return false;
}

bool
finitePositive(double v)
{
    return std::isfinite(v) && v > 0.0;
}

bool
finiteNonNegative(double v)
{
    return std::isfinite(v) && v >= 0.0;
}

} // namespace

QueryPlanner::QueryPlanner(engine::SweepEngine &engine,
                           PlannerLimits limits)
    : engine_(engine), limits_(limits), codesign_(engine)
{
}

bool
QueryPlanner::validate(const Request &request, ErrorReply &err) const
{
    const auto check_board = [&](const ComputeBoardRecord &board) {
        if (!finiteNonNegative(board.weightG) ||
            !finiteNonNegative(board.powerW))
            return invalid(err,
                           "board weight/power must be finite and "
                           ">= 0");
        return true;
    };
    const auto check_cells = [&](int cells) {
        if (cells < kMinCells || cells > kMaxCells)
            return invalid(err,
                           "cells must be in [" +
                               std::to_string(kMinCells) + ", " +
                               std::to_string(kMaxCells) + "]");
        return true;
    };
    const auto check_twr = [&](double twr) {
        if (!std::isfinite(twr) || twr < limits_.minTwr ||
            twr > limits_.maxTwr)
            return invalid(err, "twr out of accepted range");
        return true;
    };
    const auto check_wheelbase = [&](Quantity<Millimeters> wb) {
        if (!finitePositive(wb.value()) ||
            wb.value() > limits_.maxWheelbaseMm.value())
            return invalid(err, "wheelbase_mm out of accepted range");
        return true;
    };
    const auto check_aux = [&](const char *what, double v) {
        if (!finiteNonNegative(v))
            return invalid(err, std::string(what) +
                                    " must be finite and >= 0");
        return true;
    };

    if (request.kind == QueryKind::Design) {
        const DesignInputs &point = request.point;
        if (!check_wheelbase(point.wheelbaseMm) ||
            !check_cells(point.cells) || !check_twr(point.twr))
            return false;
        if (!finitePositive(point.capacityMah.value()))
            return invalid(err, "capacity_mah must be > 0");
        return check_aux("prop_diameter_in",
                         point.propDiameterIn.value()) &&
               check_board(point.compute) &&
               check_aux("sensor_weight_g",
                         point.sensorWeightG.value()) &&
               check_aux("sensor_power_w",
                         point.sensorPowerW.value()) &&
               check_aux("payload_g", point.payloadG.value());
    }

    if (request.kind == QueryKind::Codesign) {
        const codesign::MissionSpec &mission = request.mission;
        if (!finitePositive(mission.targetRateHz))
            return invalid(err, "target_rate_hz must be > 0");
        if (mission.wheelbasesMm.empty() || mission.cells.empty())
            return invalid(err,
                           "mission wheelbases_mm and cells must "
                           "be non-empty");
        if (mission.wheelbasesMm.size() > limits_.maxAxisEntries ||
            mission.cells.size() > limits_.maxAxisEntries)
            return invalid(err, "mission axis exceeds max entries");
        for (const Quantity<Millimeters> wb : mission.wheelbasesMm) {
            if (!check_wheelbase(wb))
                return false;
        }
        for (int cells : mission.cells) {
            if (!check_cells(cells))
                return false;
        }
        for (double ops : mission.perFrameOps) {
            if (!finitePositive(ops))
                return invalid(err,
                               "per_frame_ops must be finite and "
                               "> 0");
        }
        if (!finitePositive(mission.capacityLoMah.value()) ||
            !finitePositive(mission.capacityHiMah.value()) ||
            mission.capacityHiMah.value() <
                mission.capacityLoMah.value())
            return invalid(
                err, "capacity range must satisfy 0 < lo <= hi");
        if (!std::isfinite(mission.capacityStepMah.value()) ||
            mission.capacityStepMah.value() <
                limits_.minCapacityStepMah.value())
            return invalid(err, "capacity_step_mah below minimum");
        if (!check_aux("payload_g", mission.payloadG.value()))
            return false;
        // The compute-config axis is bounded by construction
        // (platforms x splits x rate ladder), so capping the
        // capacity axis bounds the whole expanded grid.
        const double capacity_steps =
            (mission.capacityHiMah.value() -
             mission.capacityLoMah.value()) /
            mission.capacityStepMah.value();
        if (capacity_steps >
            static_cast<double>(limits_.maxGridPoints))
            return invalid(err,
                           "capacity axis exceeds the grid cap");
        return true;
    }

    const SweepSpec &spec = request.spec;
    if (spec.airframes.empty() || spec.boards.empty() ||
        spec.activities.empty() || spec.cells.empty())
        return invalid(err,
                       "spec axes (airframes, boards, activities, "
                       "cells) must be non-empty");
    if (spec.airframes.size() > limits_.maxAxisEntries ||
        spec.boards.size() > limits_.maxAxisEntries ||
        spec.activities.size() > limits_.maxAxisEntries ||
        spec.cells.size() > limits_.maxAxisEntries)
        return invalid(err, "spec axis exceeds max entries");
    for (const SweepAirframe &airframe : spec.airframes) {
        if (!check_wheelbase(airframe.wheelbaseMm) ||
            !check_aux("prop_diameter_in",
                       airframe.propDiameterIn.value()))
            return false;
    }
    for (const ComputeBoardRecord &board : spec.boards) {
        if (!check_board(board))
            return false;
    }
    for (int cells : spec.cells) {
        if (!check_cells(cells))
            return false;
    }
    if (!check_twr(spec.twr))
        return false;
    if (!finitePositive(spec.capacityLoMah.value()) ||
        !finitePositive(spec.capacityHiMah.value()) ||
        spec.capacityHiMah.value() < spec.capacityLoMah.value())
        return invalid(err,
                       "capacity range must satisfy 0 < lo <= hi");
    if (!std::isfinite(spec.capacityStepMah.value()) ||
        spec.capacityStepMah.value() <
            limits_.minCapacityStepMah.value())
        return invalid(err, "capacity_step_mah below minimum");
    if (!check_aux("sensor_weight_g", spec.sensorWeightG.value()) ||
        !check_aux("sensor_power_w", spec.sensorPowerW.value()) ||
        !check_aux("payload_g", spec.payloadG.value()))
        return false;
    // Bound the capacity axis analytically before pointCount()
    // walks it — a hostile hi/step pair must not stall validation.
    const double capacity_steps =
        (spec.capacityHiMah.value() - spec.capacityLoMah.value()) /
        spec.capacityStepMah.value();
    if (capacity_steps > static_cast<double>(limits_.maxGridPoints))
        return invalid(err, "capacity axis exceeds the grid cap");
    if (spec.pointCount() > limits_.maxGridPoints)
        return invalid(err,
                       "grid expands to " +
                           std::to_string(spec.pointCount()) +
                           " points, cap is " +
                           std::to_string(limits_.maxGridPoints));
    return true;
}

std::shared_ptr<engine::SweepResult>
QueryPlanner::runCoalesced(const SweepSpec &spec)
{
    // The canonical spec serialization is the coalescing key: two
    // requests whose specs serialize identically expand to the
    // identical grid.
    Request key_request;
    key_request.kind = QueryKind::Sweep;
    key_request.spec = spec;
    const std::string key = serializeRequest(key_request);

    std::shared_ptr<InFlight> flight;
    bool leader = false;
    {
        util::MutexLock lock(mutex_);
        auto &slot = inflight_[key];
        if (!slot) {
            slot = std::make_shared<InFlight>();
            leader = true;
        }
        flight = slot;
        if (leader)
            ++stats_.batchesLed;
        else
            ++stats_.coalesced;
    }

    if (leader) {
        obs::ScopedSpan span("serve.batch", "serve");
        auto result = std::make_shared<engine::SweepResult>(
            engine_.run(spec));
        {
            util::MutexLock lock(flight->mutex);
            flight->result = result;
            flight->done = true;
        }
        flight->cv.notifyAll();
        {
            util::MutexLock lock(mutex_);
            inflight_.erase(key);
        }
        obs::metrics().counter("serve.batches.led").add(1);
        return result;
    }

    obs::metrics().counter("serve.batches.coalesced").add(1);
    util::MutexLock lock(flight->mutex);
    while (!flight->done)
        flight->cv.wait(flight->mutex);
    return flight->result;
}

std::shared_ptr<codesign::CodesignOutcome>
QueryPlanner::runCodesignCoalesced(
    const codesign::MissionSpec &mission)
{
    // Same single-flight shape as runCoalesced: the canonical
    // request serialization is the key, so two codesign queries for
    // byte-identical missions share one search.
    Request key_request;
    key_request.kind = QueryKind::Codesign;
    key_request.mission = mission;
    const std::string key = serializeRequest(key_request);

    std::shared_ptr<InFlightCodesign> flight;
    bool leader = false;
    {
        util::MutexLock lock(mutex_);
        auto &slot = inflightCodesign_[key];
        if (!slot) {
            slot = std::make_shared<InFlightCodesign>();
            leader = true;
        }
        flight = slot;
        if (leader)
            ++stats_.batchesLed;
        else
            ++stats_.coalesced;
    }

    if (leader) {
        obs::ScopedSpan span("serve.codesign", "serve");
        auto outcome = std::make_shared<codesign::CodesignOutcome>(
            codesign_.run(mission));
        {
            util::MutexLock lock(flight->mutex);
            flight->outcome = outcome;
            flight->done = true;
        }
        flight->cv.notifyAll();
        {
            util::MutexLock lock(mutex_);
            inflightCodesign_.erase(key);
        }
        obs::metrics().counter("serve.batches.led").add(1);
        return outcome;
    }

    obs::metrics().counter("serve.batches.coalesced").add(1);
    util::MutexLock lock(flight->mutex);
    while (!flight->done)
        flight->cv.wait(flight->mutex);
    return flight->outcome;
}

std::string
QueryPlanner::execute(const Request &request)
{
    obs::ScopedSpan span("serve.execute", "serve");
    ErrorReply err;
    if (!validate(request, err)) {
        {
            util::MutexLock lock(mutex_);
            ++stats_.invalid;
        }
        obs::metrics().counter("serve.queries.invalid").add(1);
        return serializeErrorReply(request.id, err);
    }

    std::string reply;
    switch (request.kind) {
    case QueryKind::Design:
        reply = serializeDesignReply(request.id,
                                     engine_.solve(request.point));
        break;
    case QueryKind::Sweep: {
        const std::shared_ptr<engine::SweepResult> result =
            runCoalesced(request.spec);
        reply = serializeSweepReply(request.id, result->points,
                                    result->feasible.size(),
                                    result->frontier);
        break;
    }
    case QueryKind::Pareto: {
        const std::shared_ptr<engine::SweepResult> result =
            runCoalesced(request.spec);
        reply = serializeParetoReply(request.id, result->points,
                                     result->frontier);
        break;
    }
    case QueryKind::Codesign: {
        const std::shared_ptr<codesign::CodesignOutcome> outcome =
            runCodesignCoalesced(request.mission);
        reply = serializeCodesignReply(request.id, *outcome);
        break;
    }
    }
    {
        util::MutexLock lock(mutex_);
        ++stats_.executed;
    }
    obs::metrics().counter("serve.queries.executed").add(1);
    return reply;
}

PlannerStats
QueryPlanner::stats() const
{
    util::MutexLock lock(mutex_);
    return stats_;
}

} // namespace dronedse::serve
