/**
 * @file
 * Service: the transport-independent core of the DSE query server.
 *
 * Owns the three stages every transport shares — parse (request.hh),
 * admit (admission.hh), execute (planner.hh over one SweepEngine) —
 * so the poll(2) TCP server and the deterministic in-process
 * `LocalTransport` run the *same* pipeline and tests never need a
 * socket to cover protocol, planning, or admission behaviour.
 *
 * Two entry styles:
 *  - `handleFrame(frame, t)`: the synchronous path — size check,
 *    parse, admission (zero queue wait), execute, one reply frame.
 *  - `ingest(frame, conn, t)` + `processOne(t, ...)`: the queued
 *    path transports use — ingest replies immediately on any
 *    rejection and queues admitted work; workers drain with
 *    `processOne`.
 */

#ifndef DRONEDSE_SERVE_SERVICE_HH
#define DRONEDSE_SERVE_SERVICE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "engine/engine.hh"
#include "serve/admission.hh"
#include "serve/planner.hh"
#include "serve/request.hh"

namespace dronedse::serve {

/** Everything a Service instance is configured by. */
struct ServiceOptions
{
    engine::EngineOptions engine;
    PlannerLimits limits;
    AdmissionConfig admission;
    /** Frames longer than this are answered with `too_large`. */
    std::size_t maxFrameBytes = 1 << 20;
};

/** What `ingest` did with a frame. */
struct IngestOutcome
{
    /** True when the frame was queued for a worker. */
    bool queued = false;
    /** The immediate reply frame when not queued. */
    std::string reply;
};

class Service
{
  public:
    explicit Service(ServiceOptions options = {});

    /**
     * Full pipeline, no queueing, at time `t`.  Never fails: every
     * frame maps to exactly one reply frame (no newline).
     */
    std::string handleFrame(const std::string &frame, double t);

    /**
     * Transport front half: size check + parse + admission.  A
     * rejection (oversize, malformed, rate-limited, shed) yields
     * the immediate error reply; an admitted frame is queued
     * tagged with `conn` and the outcome has `queued == true`.
     */
    IngestOutcome ingest(const std::string &frame,
                         std::uint64_t conn, double t);

    /**
     * Transport back half: pop one queued request at time `t`,
     * execute it, and return (conn, reply).  nullopt when idle.
     */
    std::optional<std::pair<std::uint64_t, std::string>>
    processOne(double t);

    AdmissionController &admission() { return admission_; }
    QueryPlanner &planner() { return planner_; }
    engine::SweepEngine &engine() { return engine_; }
    const ServiceOptions &options() const { return options_; }

  private:
    ServiceOptions options_;
    engine::SweepEngine engine_;
    QueryPlanner planner_;
    AdmissionController admission_;
};

} // namespace dronedse::serve

#endif // DRONEDSE_SERVE_SERVICE_HH
