/**
 * @file
 * Wire protocol of the DSE query service.
 *
 * Frames are line-delimited JSON: one request object per line in,
 * one reply object per line out.  Four query kinds map onto the
 * existing model vocabulary:
 *
 *   design   — one `DesignInputs` point, solved through the memo
 *              cache (`{"id": 1, "kind": "design", "point": {...}}`)
 *   sweep    — a full `SweepSpec` grid; the reply carries every grid
 *              point in `expandGrid` order plus the feasible count
 *              and Pareto frontier indices
 *   pareto   — same spec, but the reply carries only the frontier
 *   codesign — a `codesign::MissionSpec`; the reply carries the
 *              recommended compute configuration plus the
 *              per-platform and per-split frontiers
 *   explore  — an `explore::ExploreQuery` (typed space + budget
 *              options); the reply carries the adaptive Pareto
 *              frontier, the round ledger, and the incumbent
 *   risk     — an `explore::RiskQuery` (one point + uncertainty
 *              options + gates); the reply carries the gate report
 *              and requested flight-time/weight quantiles
 *
 * Every reply echoes the request id and carries either `"ok": true`
 * with results or `"ok": false` with a typed error
 * (`{"code": "parse_error" | "invalid_request" | "too_large" |
 * "rate_limited" | "overloaded" | "internal", "message": ...}`).
 *
 * `serializeRequest` emits a canonical spelling (fixed member order,
 * every field explicit), so serialize -> parse -> serialize is a
 * byte-identical fixed point; `parseRequest` is lenient about member
 * order and missing fields (defaults apply) but strict about types
 * and enum spellings, and never touches engine or admission state —
 * a malformed frame costs one error reply and nothing else.  The
 * full grammar is in DESIGN.md §12.
 */

#ifndef DRONEDSE_SERVE_REQUEST_HH
#define DRONEDSE_SERVE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "codesign/codesign.hh"
#include "dse/sweep.hh"
#include "explore/driver.hh"
#include "explore/gate.hh"

namespace dronedse::serve {

/** Query kinds of the protocol. */
enum class QueryKind
{
    Design,
    Sweep,
    Pareto,
    Codesign,
    Explore,
    Risk,
};

/** Admission classes: interactive outranks batch under shed. */
enum class QueryClass
{
    Interactive,
    Batch,
};

/** Typed error taxonomy of the protocol. */
enum class ErrorCode
{
    /** Frame is not a JSON object / not valid JSON. */
    ParseError,
    /** Well-formed JSON that violates the request schema or limits. */
    InvalidRequest,
    /** Frame exceeds the transport's line-length cap. */
    TooLarge,
    /** Per-class token bucket is empty. */
    RateLimited,
    /** Shed by admission control (queue full or overload state). */
    Overloaded,
    /** Server-side bug surfaced as a reply instead of a crash. */
    Internal,
};

/** Wire spellings ("design", "interactive", "parse_error", ...). */
const char *queryKindName(QueryKind kind);
const char *queryClassName(QueryClass cls);
const char *errorCodeName(ErrorCode code);

/** One parsed request frame. */
struct Request
{
    std::uint64_t id = 0;
    QueryKind kind = QueryKind::Design;
    QueryClass cls = QueryClass::Interactive;
    /** Valid when kind == Design. */
    DesignInputs point;
    /** Valid when kind == Sweep or Pareto. */
    SweepSpec spec;
    /** Valid when kind == Codesign. */
    codesign::MissionSpec mission;
    /** Valid when kind == Explore. */
    explore::ExploreQuery explore;
    /** Valid when kind == Risk. */
    explore::RiskQuery risk;
};

/** Payload of an error reply. */
struct ErrorReply
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

/**
 * Parse one request frame.  On success fills `out` and returns true;
 * on failure fills `err` (ParseError for non-JSON, InvalidRequest
 * for schema violations) and, when the frame carried a readable id,
 * echoes it into `out.id` so the error reply can be correlated.
 */
bool parseRequest(const std::string &frame, Request &out,
                  ErrorReply &err);

/** Canonical request frame (no trailing newline). */
std::string serializeRequest(const Request &request);

/** Reply frames (no trailing newline). */
std::string serializeErrorReply(std::uint64_t id,
                                const ErrorReply &err);
std::string serializeDesignReply(std::uint64_t id,
                                 const DesignResult &result);
std::string
serializeSweepReply(std::uint64_t id,
                    const std::vector<DesignResult> &points,
                    std::size_t feasible_count,
                    const std::vector<std::size_t> &frontier);
std::string
serializeParetoReply(std::uint64_t id,
                     const std::vector<DesignResult> &points,
                     const std::vector<std::size_t> &frontier);
std::string
serializeCodesignReply(std::uint64_t id,
                       const codesign::CodesignOutcome &outcome);
std::string
serializeExploreReply(std::uint64_t id,
                      const explore::ExploreResult &result);
/** `quantiles` echoes the request's list (values read off the ECDF). */
std::string serializeRiskReply(std::uint64_t id,
                               const explore::RiskOutcome &outcome,
                               const std::vector<double> &quantiles);

} // namespace dronedse::serve

#endif // DRONEDSE_SERVE_REQUEST_HH
