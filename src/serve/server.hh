/**
 * @file
 * Poll(2)-based TCP front end of the DSE query service.
 *
 * Single event-loop thread plus a worker pool:
 *
 *   event loop — accepts connections, splits the byte stream into
 *     line frames, runs the cheap front half (`Service::ingest`:
 *     size check, parse, admission) inline, writes immediate
 *     rejections, and flushes worker replies; the only thread that
 *     touches connection state.
 *   workers — drain the admission queue via `Service::processOne`
 *     (the expensive solve/sweep half) and post (conn, reply)
 *     pairs back through a mutex-guarded reply queue, waking the
 *     event loop over a self-pipe.
 *
 * Replies are routed by connection id and carry the request id, so
 * pipelined requests on one connection may complete out of order —
 * clients correlate by id (the loadgen does exactly this).
 * Everything is plain blocking-free POSIX: no external deps, and
 * the event loop survives slow readers by buffering per-connection
 * output and enabling POLLOUT only while a backlog exists.
 */

#ifndef DRONEDSE_SERVE_SERVER_HH
#define DRONEDSE_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hh"
#include "util/thread_annotations.hh"

namespace dronedse::serve {

/** Configuration of one server instance. */
struct ServerOptions
{
    ServiceOptions service;
    /** IPv4 address to bind. */
    std::string bindAddress = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (see `port()`). */
    std::uint16_t port = 0;
    /** Worker threads; 0 = hardware concurrency. */
    int workers = 1;
    /** listen(2) backlog. */
    int backlog = 64;
};

class Server
{
  public:
    explicit Server(ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the event loop and workers.  Returns
     * the bound port (the ephemeral choice when options.port == 0).
     * fatal() on socket errors.
     */
    std::uint16_t start();

    /** Stop and join every thread; idempotent. */
    void stop();

    bool running() const { return running_.load(); }
    std::uint16_t port() const { return port_; }

    Service &service() { return service_; }

  private:
    struct Connection
    {
        int fd = -1;
        std::string inbuf;
        std::string outbuf;
        /** Close once outbuf drains (protocol violation seen). */
        bool closeAfterFlush = false;
    };

    void eventLoop();
    void workerLoop() DDSE_EXCLUDES(workMutex_, replyMutex_);
    void wakeEventLoop();
    /** Seconds on the steady clock (admission's time base). */
    double monotonicNow() const;

    void acceptClients();
    void readClient(std::uint64_t conn_id);
    void writeClient(std::uint64_t conn_id);
    void closeClient(std::uint64_t conn_id);
    void queueReply(Connection &conn, const std::string &reply);
    void drainReplyQueue() DDSE_EXCLUDES(replyMutex_);

    ServerOptions options_;
    Service service_;

    int listenFd_ = -1;
    int wakeReadFd_ = -1;
    int wakeWriteFd_ = -1;
    std::uint16_t port_ = 0;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    std::thread eventThread_;
    std::vector<std::thread> workerThreads_;
    /** Pure sleep/wakeup rendezvous for idle workers: the condition
     *  reads only atomics and the self-locking admission queue, so
     *  no data lives under this mutex. */
    util::Mutex workMutex_;
    util::CondVar workCv_;

    util::Mutex replyMutex_;
    std::deque<std::pair<std::uint64_t, std::string>> replyQueue_
        DDSE_GUARDED_BY(replyMutex_);

    /** Event-loop-thread-only state: confined to `eventThread_`
     *  (plus start/stop when no event loop is running), never
     *  shared, so there is deliberately no mutex to annotate. */
    std::map<std::uint64_t, Connection> connections_;
    std::uint64_t nextConnId_ = 1;
};

} // namespace dronedse::serve

#endif // DRONEDSE_SERVE_SERVER_HH
