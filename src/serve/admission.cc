#include "serve/admission.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace dronedse::serve {

const char *
shedStateName(ShedState state)
{
    switch (state) {
    case ShedState::Nominal: return "nominal";
    case ShedState::ShedLowPriority: return "shed_low_priority";
    case ShedState::RejectAll: return "reject_all";
    }
    panic("shedStateName: corrupt state");
    return "";
}

ErrorReply
admitError(AdmitDecision decision)
{
    switch (decision) {
    case AdmitDecision::RateLimited:
        return {ErrorCode::RateLimited,
                "per-class rate limit exceeded"};
    case AdmitDecision::QueueFull:
        return {ErrorCode::Overloaded, "request queue full"};
    case AdmitDecision::ShedClass:
        return {ErrorCode::Overloaded,
                "shedding low-priority queries"};
    case AdmitDecision::ShedAll:
        return {ErrorCode::Overloaded, "rejecting all queries"};
    case AdmitDecision::Admit:
        break;
    }
    panic("admitError: Admit is not an error");
    return {};
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(std::move(config)), waitHist_(config_.waitBounds),
      windowBaseCounts_(config_.waitBounds.size() + 1, 0)
{
    if (config_.queueCapacity == 0)
        fatal("AdmissionController: queueCapacity must be > 0");
    if (config_.shedLevel <= 0.0 ||
        config_.rejectLevel <= config_.shedLevel)
        fatal("AdmissionController: need 0 < shedLevel < "
              "rejectLevel");
}

bool
AdmissionController::takeToken(Bucket &bucket,
                               const TokenBucketConfig &config,
                               double t)
{
    if (!bucket.started) {
        bucket.tokens = config.burst;
        bucket.lastT = t;
        bucket.started = true;
    }
    const double dt = std::max(0.0, t - bucket.lastT);
    bucket.tokens = std::min(config.burst,
                             bucket.tokens + dt * config.ratePerSecond);
    bucket.lastT = t;
    if (bucket.tokens < 1.0)
        return false;
    bucket.tokens -= 1.0;
    return true;
}

void
AdmissionController::transitionTo(ShedState to, double t,
                                  const std::string &reason)
{
    if (to == state_)
        return;
    transitions_.push_back(ShedTransition{t, state_, to, reason});
    state_ = to;
    obs::metrics().counter("serve.admission.transitions").add(1);
    obs::metrics()
        .gauge("serve.admission.state")
        .set(static_cast<double>(to));
}

void
AdmissionController::advanceState(double t)
{
    if (!haveLevelT_) {
        haveLevelT_ = true;
        levelT_ = t;
        lastElevatedT_ = t;
    }
    const double dt = std::max(0.0, t - levelT_);
    if (dt > 0.0 && config_.overloadHalfLifeS > 0.0) {
        overloadLevel_ *=
            std::exp2(-dt / config_.overloadHalfLifeS);
        levelT_ = t;
    }

    ShedState demand = ShedState::Nominal;
    std::string reason;
    if (overloadLevel_ >= config_.rejectLevel) {
        demand = ShedState::RejectAll;
        reason = "overload level above reject threshold";
    } else if (overloadLevel_ >= config_.shedLevel) {
        demand = ShedState::ShedLowPriority;
        reason = "overload level above shed threshold";
    }

    if (demand > state_) {
        // Escalation is immediate, exactly like the degradation
        // policy's severity ladder.
        transitionTo(demand, t, reason);
        lastElevatedT_ = t;
        return;
    }
    if (demand == state_) {
        lastElevatedT_ = t;
        return;
    }
    if (t - lastElevatedT_ >= config_.recoveryHoldS)
        transitionTo(demand, t, "recovered");
}

void
AdmissionController::closeWindow()
{
    const std::vector<std::uint64_t> counts = waitHist_.counts();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i)
        total += counts[i] - windowBaseCounts_[i];
    if (total == 0)
        return;
    // Smallest bucket edge at which the cumulative window count
    // reaches 95 %; the overflow bucket reports past the last edge.
    const std::uint64_t target = total - total / 20; // ceil(0.95 n)
    std::uint64_t cumulative = 0;
    double p95 = 0.0;
    const std::vector<double> &bounds = waitHist_.bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cumulative += counts[i] - windowBaseCounts_[i];
        if (cumulative >= target) {
            p95 = i < bounds.size() ? bounds[i]
                                    : bounds.back() * 2.0;
            break;
        }
    }
    lastWindowP95S_ = p95;
    windowBaseCounts_ = counts;
    samplesInWindow_ = 0;

    if (p95 >= config_.waitP95RejectS)
        overloadLevel_ += 3.0;
    else if (p95 >= config_.waitP95ShedS)
        overloadLevel_ += 1.0;
    obs::metrics()
        .gauge("serve.queue.wait_p95_seconds")
        .set(p95);
}

AdmitDecision
AdmissionController::submit(QueuedItem item, double t)
{
    obs::MetricsRegistry &registry = obs::metrics();
    util::MutexLock lock(mutex_);
    advanceState(t);

    AdmitDecision decision = AdmitDecision::Admit;
    if (state_ == ShedState::RejectAll) {
        decision = AdmitDecision::ShedAll;
        ++stats_.shedAll;
        registry.counter("serve.admission.shed_all").add(1);
    } else if (state_ == ShedState::ShedLowPriority &&
               item.request.cls == QueryClass::Batch) {
        decision = AdmitDecision::ShedClass;
        ++stats_.shedClass;
        registry.counter("serve.admission.shed_class").add(1);
    } else {
        Bucket &bucket = item.request.cls == QueryClass::Interactive
                             ? interactiveBucket_
                             : batchBucket_;
        const TokenBucketConfig &bucket_config =
            item.request.cls == QueryClass::Interactive
                ? config_.interactive
                : config_.batch;
        if (!takeToken(bucket, bucket_config, t)) {
            decision = AdmitDecision::RateLimited;
            ++stats_.rateLimited;
            registry.counter("serve.admission.rate_limited").add(1);
        } else if (queue_.size() >= config_.queueCapacity) {
            decision = AdmitDecision::QueueFull;
            ++stats_.queueFull;
            registry.counter("serve.admission.queue_full").add(1);
        }
    }
    if (decision != AdmitDecision::Admit)
        return decision;

    item.enqueueT = t;
    queue_.push_back(std::move(item));
    ++stats_.admitted;
    registry.counter("serve.admission.admitted").add(1);
    registry.gauge("serve.queue.depth")
        .set(static_cast<double>(queue_.size()));
    return AdmitDecision::Admit;
}

bool
AdmissionController::pop(double t, QueuedItem &out)
{
    util::MutexLock lock(mutex_);
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();

    const double wait = std::max(0.0, t - out.enqueueT);
    waitHist_.record(wait);
    obs::metrics()
        .histogram("serve.queue.wait_seconds", config_.waitBounds)
        .record(wait);
    obs::metrics().gauge("serve.queue.depth")
        .set(static_cast<double>(queue_.size()));
    advanceState(t);
    if (++samplesInWindow_ >= kP95WindowSamples) {
        // Decay (above) happens before the window feeds the
        // accumulator, so the ladder sees the freshly-added level;
        // the second advanceState call has dt == 0 and only
        // resolves the state.
        closeWindow();
        advanceState(t);
    }
    return true;
}

std::size_t
AdmissionController::depth() const
{
    util::MutexLock lock(mutex_);
    return queue_.size();
}

ShedState
AdmissionController::state() const
{
    util::MutexLock lock(mutex_);
    return state_;
}

AdmissionStats
AdmissionController::stats() const
{
    util::MutexLock lock(mutex_);
    return stats_;
}

double
AdmissionController::overloadLevel() const
{
    util::MutexLock lock(mutex_);
    return overloadLevel_;
}

double
AdmissionController::lastWindowP95S() const
{
    util::MutexLock lock(mutex_);
    return lastWindowP95S_;
}

std::vector<ShedTransition>
AdmissionController::transitions() const
{
    util::MutexLock lock(mutex_);
    return transitions_;
}

} // namespace dronedse::serve
