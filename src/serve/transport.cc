#include "serve/transport.hh"

namespace dronedse::serve {

LocalTransport::LocalTransport(Service &service, double service_time)
    : service_(service), serviceTime_(service_time)
{
}

void
LocalTransport::advance(double dt)
{
    if (dt > 0.0)
        now_ += dt;
}

void
LocalTransport::submit(const std::string &frame, std::uint64_t conn)
{
    const IngestOutcome outcome = service_.ingest(frame, conn, now_);
    if (!outcome.queued)
        exchanges_.push_back(
            LocalExchange{conn, outcome.reply, now_, true});
}

std::size_t
LocalTransport::drain(std::size_t max_items)
{
    std::size_t processed = 0;
    while (processed < max_items) {
        // The service time is charged before the dequeue, so the
        // popped item's recorded wait includes the execution of
        // the query ahead of it — the closed-loop discipline a
        // single-worker server exhibits.
        auto completed = service_.processOne(now_);
        if (!completed)
            break;
        now_ += serviceTime_;
        exchanges_.push_back(LocalExchange{completed->first,
                                           completed->second, now_,
                                           false});
        ++processed;
    }
    return processed;
}

std::vector<std::string>
LocalTransport::replies() const
{
    std::vector<std::string> out;
    out.reserve(exchanges_.size());
    for (const LocalExchange &exchange : exchanges_)
        out.push_back(exchange.reply);
    return out;
}

std::string
LocalTransport::roundTrip(const std::string &frame,
                          std::uint64_t conn)
{
    const std::size_t before = exchanges_.size();
    submit(frame, conn);
    // A rejection completed inside submit; otherwise the frame is
    // queued and one drain step produces its reply.
    if (exchanges_.size() == before)
        drain(1);
    return exchanges_.back().reply;
}

} // namespace dronedse::serve
