/**
 * @file
 * Seeded candidate generators over an `ExploreSpace` lattice.
 *
 * Four interchangeable strategies behind one interface:
 *
 *   grid     — exhaustive lexicographic enumeration (last axis
 *              fastest; the expandGrid order when the space came
 *              from a SweepSpec)
 *   uniform  — i.i.d. uniform draws from the seeded `Rng`
 *   lhs      — Latin-hypercube batches: each batch stratifies every
 *              axis into `n` equal slices and places exactly one
 *              sample per slice per axis (one-per-stratum marginals,
 *              property-tested)
 *   sobol    — digitally-shifted Sobol' low-discrepancy sequence
 *              (new-Joe-Kuo direction numbers, up to 10 dimensions);
 *              1-D projections of any 2^k-aligned prefix hit every
 *              dyadic stratum exactly once
 *
 * Every generator is a pure function of (seed, call history): the
 * same seed yields the byte-identical candidate stream on any
 * machine and at any thread count — generators never touch the
 * engine or any clock.  Continuous unit-cube samples map onto
 * lattice indices via `i = min(count-1, floor(u * count))`.
 */

#ifndef DRONEDSE_EXPLORE_SAMPLER_HH
#define DRONEDSE_EXPLORE_SAMPLER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "explore/space.hh"

namespace dronedse::explore {

/** The candidate-generation strategies. */
enum class SamplerKind
{
    Grid,
    UniformRandom,
    LatinHypercube,
    Sobol,
};

/** Wire/CLI spelling ("grid", "uniform", "lhs", "sobol"). */
const char *samplerKindName(SamplerKind kind);

/** Inverse of `samplerKindName`; returns false on unknown input. */
bool parseSamplerKind(const std::string &name, SamplerKind &out);

/** Largest axis count the Sobol' direction-number table covers. */
inline constexpr std::size_t kMaxSobolDimensions = 10;

/**
 * One candidate stream.  `nextBatch` returns up to `n` index
 * vectors over `space` (fewer only when an exhaustive generator
 * runs dry).  Successive calls continue the same stream; the space
 * passed to every call of one generator must have the same axis
 * arity (fatal otherwise).  Candidates may repeat across calls for
 * the stochastic strategies — deduplication is the driver's job.
 */
class CandidateGenerator
{
  public:
    virtual ~CandidateGenerator() = default;

    virtual std::vector<std::vector<std::size_t>>
    nextBatch(const ExploreSpace &space, std::size_t n) = 0;

    virtual SamplerKind kind() const = 0;
};

/** Construct a generator of the given strategy and seed. */
std::unique_ptr<CandidateGenerator> makeGenerator(SamplerKind kind,
                                                  std::uint64_t seed);

} // namespace dronedse::explore

#endif // DRONEDSE_EXPLORE_SAMPLER_HH
