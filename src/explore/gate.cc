#include "explore/gate.hh"

#include <cstdio>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace dronedse::explore {

const char *
gateMetricName(GateMetric metric)
{
    switch (metric) {
    case GateMetric::FlightTimeMin: return "flight_time_min";
    case GateMetric::TotalWeightG: return "total_weight_g";
    }
    panic("gateMetricName: corrupt metric");
    return "";
}

bool
parseGateMetric(const std::string &name, GateMetric &out)
{
    if (name == "flight_time_min")
        out = GateMetric::FlightTimeMin;
    else if (name == "total_weight_g")
        out = GateMetric::TotalWeightG;
    else
        return false;
    return true;
}

const char *
gateOpName(GateOp op)
{
    switch (op) {
    case GateOp::AtLeast: return "at_least";
    case GateOp::AtMost: return "at_most";
    }
    panic("gateOpName: corrupt op");
    return "";
}

bool
parseGateOp(const std::string &name, GateOp &out)
{
    if (name == "at_least")
        out = GateOp::AtLeast;
    else if (name == "at_most")
        out = GateOp::AtMost;
    else
        return false;
    return true;
}

GateReport
evaluateGates(const UncertaintyResult &uncertainty,
              const std::vector<GateSpec> &gates)
{
    GateReport report;
    report.samples = uncertainty.samples;
    report.feasibleFraction = uncertainty.feasibleFraction();
    report.gates.reserve(gates.size());
    for (const GateSpec &spec : gates) {
        const Ecdf &dist = spec.metric == GateMetric::FlightTimeMin
                               ? uncertainty.flightTimeMin
                               : uncertainty.totalWeightG;
        // Count the feasible samples meeting the threshold directly
        // (the sorted sample walk keeps this exact on ties), then
        // divide by *all* samples: an infeasible draw misses every
        // gate by definition.
        std::size_t met = 0;
        for (double x : dist.samples()) {
            if (spec.op == GateOp::AtLeast ? x >= spec.threshold
                                           : x <= spec.threshold)
                ++met;
        }
        GateOutcome outcome;
        outcome.spec = spec;
        outcome.probability =
            uncertainty.samples == 0
                ? 0.0
                : static_cast<double>(met) /
                      static_cast<double>(uncertainty.samples);
        outcome.pass = outcome.probability >= spec.minProbability;
        report.gates.push_back(outcome);
        if (!outcome.pass)
            report.allPass = false;
    }
    return report;
}

std::string
gateReportText(const GateReport &report)
{
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "closeout: %zu samples, %.1f%% feasible\n",
                  report.samples, 100.0 * report.feasibleFraction);
    std::string out = buf;
    for (const GateOutcome &g : report.gates) {
        std::snprintf(buf, sizeof buf,
                      "  P[%s %s %g] = %.3f (need %.3f): %s\n",
                      gateMetricName(g.spec.metric),
                      g.spec.op == GateOp::AtLeast ? ">=" : "<=",
                      g.spec.threshold, g.probability,
                      g.spec.minProbability,
                      g.pass ? "PASS" : "FAIL");
        out += buf;
    }
    out += report.allPass ? "verdict: PASS\n" : "verdict: FAIL\n";
    return out;
}

std::string
gateReportCsv(const GateReport &report)
{
    std::string out =
        "metric,op,threshold,min_probability,probability,pass\n";
    char buf[160];
    for (const GateOutcome &g : report.gates) {
        std::snprintf(buf, sizeof buf, "%s,%s,%.17g,%.17g,%.17g,%d\n",
                      gateMetricName(g.spec.metric),
                      gateOpName(g.spec.op), g.spec.threshold,
                      g.spec.minProbability, g.probability,
                      g.pass ? 1 : 0);
        out += buf;
    }
    return out;
}

RiskOutcome
runRiskQuery(const RiskQuery &query)
{
    return runRiskQuery(
        query, FitScatter::fromCatalogs(query.options.seed,
                                        query.options.scatterReplicates));
}

RiskOutcome
runRiskQuery(const RiskQuery &query, const FitScatter &scatter)
{
    for (double q : query.quantiles) {
        if (!(q >= 0.0 && q <= 1.0))
            fatal("runRiskQuery: quantile outside [0, 1]");
    }
    RiskOutcome outcome;
    outcome.uncertainty =
        propagateUncertainty(query.point, query.options, scatter);
    outcome.report = evaluateGates(outcome.uncertainty, query.gates);

    obs::MetricsRegistry &registry = obs::metrics();
    registry.counter("explore.risk_queries").add(1);
    registry.counter("explore.risk_samples")
        .add(outcome.uncertainty.samples);
    if (!outcome.report.allPass)
        registry.counter("explore.risk_gate_failures").add(1);
    return outcome;
}

} // namespace dronedse::explore
