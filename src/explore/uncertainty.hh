/**
 * @file
 * Uncertainty propagation through the component-survey fits.
 *
 * The solver's weight models are least-squares lines fitted to the
 * paper's component surveys (Figures 7-8).  Those coefficients are
 * estimates: refitting against a resampled catalog moves them, and
 * the movement propagates through the weight closure into flight
 * time.  This module makes that propagation explicit:
 *
 *   `SurveyModel`        — the full fit-coefficient set the solver
 *                          consumes (battery per cell count, ESC per
 *                          class, frame); `paper()` is the published
 *                          one
 *   `FitScatter`         — per-coefficient standard deviations,
 *                          derived by refitting `replicates`
 *                          independently seeded synthetic catalogs
 *                          and measuring the recovered spread
 *   `solveDesignModel`   — `solveDesign` with the fit coefficients
 *                          as an argument; with `SurveyModel::paper()`
 *                          it is bit-identical to `solveDesign`
 *                          (differential-tested)
 *   `propagateUncertainty` — Monte-Carlo over perturbed models: one
 *                          solve per sampled coefficient set, flight
 *                          time and all-up weight collected into
 *                          exact ECDFs (feasible samples only; the
 *                          feasible fraction is reported separately)
 *
 * Determinism: a fresh seeded `Rng` per call with a fixed draw
 * order, so results are byte-stable and — because every design sees
 * the same perturbation stream (common random numbers) — per-design
 * comparisons are paired, not confounded by sampling noise.
 */

#ifndef DRONEDSE_EXPLORE_UNCERTAINTY_HH
#define DRONEDSE_EXPLORE_UNCERTAINTY_HH

#include <array>
#include <cstdint>

#include "dse/design_point.hh"
#include "util/ecdf.hh"
#include "util/regression.hh"
#include "util/rng.hh"

namespace dronedse::explore {

/** Every survey-fit coefficient the design solver consumes. */
struct SurveyModel
{
    /** Capacity -> pack weight, indexed by cells - 1 (Figure 7). */
    std::array<LinearFit, 6> batteryFits;
    /** Current -> 4x-ESC weight, indexed by EscClass (Figure 8a). */
    std::array<LinearFit, 2> escFits;
    /** Wheelbase -> frame weight above 200 mm (Figure 8b). */
    LinearFit frameFit;

    /** The published coefficient set. */
    static SurveyModel paper();
};

/** Standard deviation of each fit coefficient under refitting. */
struct FitScatter
{
    std::array<double, 6> batterySlopeSd{};
    std::array<double, 6> batteryInterceptSd{};
    std::array<double, 2> escSlopeSd{};
    std::array<double, 2> escInterceptSd{};
    double frameSlopeSd = 0.0;
    double frameInterceptSd = 0.0;

    /**
     * Derive the scatter empirically: synthesize `replicates`
     * independently seeded component catalogs (the same generators
     * the survey pipeline tests use), refit every line, and take
     * the sample standard deviation of each recovered coefficient.
     */
    static FitScatter fromCatalogs(std::uint64_t seed,
                                   int replicates = 64);
};

/**
 * One Monte-Carlo draw: every coefficient perturbed independently by
 * a Gaussian of its scatter, in a fixed order (battery 1S..6S, ESC
 * short/long, frame; slope before intercept) so a shared `Rng`
 * yields a reproducible model stream.
 */
SurveyModel perturbSurveyModel(const SurveyModel &base,
                               const FitScatter &scatter, Rng &rng);

/**
 * `solveDesign` with the survey fits supplied by the caller instead
 * of baked in.  `solveDesignModel(x, SurveyModel::paper())` is
 * bit-identical to `solveDesign(x)` for every input (the
 * differential battery sweeps whole grids to pin this), so the
 * nominal path and the perturbed path cannot drift apart.
 */
DesignResult solveDesignModel(const DesignInputs &inputs,
                              const SurveyModel &model);

/** Monte-Carlo configuration of one propagation run. */
struct UncertaintyOptions
{
    /** Seed of both the scatter derivation and the MC draws. */
    std::uint64_t seed = 17;
    /** Number of perturbed-model solves. */
    std::size_t samples = 256;
    /** Catalog replicates behind `FitScatter::fromCatalogs`. */
    int scatterReplicates = 64;
};

/** Distributional outputs of one design point. */
struct UncertaintyResult
{
    /** The unperturbed solve. */
    DesignResult nominal;
    /** Total Monte-Carlo samples drawn. */
    std::size_t samples = 0;
    /** Samples whose perturbed closure stayed feasible. */
    std::size_t feasibleSamples = 0;
    /** Flight-time ECDF over feasible samples (may be empty). */
    Ecdf flightTimeMin;
    /** All-up-weight ECDF over feasible samples (may be empty). */
    Ecdf totalWeightG;

    double feasibleFraction() const
    {
        return samples == 0 ? 0.0
                            : static_cast<double>(feasibleSamples) /
                                  static_cast<double>(samples);
    }
};

/**
 * Propagate survey-fit uncertainty through one design point.  The
 * two-argument form derives the scatter itself; the three-argument
 * form reuses a precomputed one (the risk query path derives it
 * once per batch).
 */
UncertaintyResult
propagateUncertainty(const DesignInputs &point,
                     const UncertaintyOptions &options);
UncertaintyResult
propagateUncertainty(const DesignInputs &point,
                     const UncertaintyOptions &options,
                     const FitScatter &scatter);

} // namespace dronedse::explore

#endif // DRONEDSE_EXPLORE_UNCERTAINTY_HH
