#include "explore/space.hh"

#include <cmath>
#include <limits>

#include "components/battery.hh"
#include "util/logging.hh"

namespace dronedse::explore {

const char *
axisKindName(AxisKind kind)
{
    switch (kind) {
    case AxisKind::Wheelbase: return "wheelbase_mm";
    case AxisKind::Cells: return "cells";
    case AxisKind::Capacity: return "capacity_mah";
    case AxisKind::Twr: return "twr";
    case AxisKind::Board: return "board";
    case AxisKind::Activity: return "activity";
    case AxisKind::Payload: return "payload_g";
    }
    panic("axisKindName: corrupt kind");
    return "";
}

bool
parseAxisKind(const std::string &name, AxisKind &out)
{
    if (name == "wheelbase_mm")
        out = AxisKind::Wheelbase;
    else if (name == "cells")
        out = AxisKind::Cells;
    else if (name == "capacity_mah")
        out = AxisKind::Capacity;
    else if (name == "twr")
        out = AxisKind::Twr;
    else if (name == "board")
        out = AxisKind::Board;
    else if (name == "activity")
        out = AxisKind::Activity;
    else if (name == "payload_g")
        out = AxisKind::Payload;
    else
        return false;
    return true;
}

bool
axisIsOrdered(AxisKind kind)
{
    // Boards and activities have no between-values ordering the
    // boundary bisection could exploit; everything else steps a
    // monotone physical quantity.
    return kind != AxisKind::Board && kind != AxisKind::Activity;
}

std::size_t
AxisSpec::size() const
{
    switch (kind) {
    case AxisKind::Cells: return cells.size();
    case AxisKind::Board: return boards.size();
    case AxisKind::Activity: return activities.size();
    default: return count;
    }
}

namespace {

AxisSpec
latticeAxis(AxisKind kind, double lo, double step, std::size_t count)
{
    AxisSpec axis;
    axis.kind = kind;
    axis.lo = lo;
    axis.step = step;
    axis.count = count;
    return axis;
}

/**
 * Lattice value by *accumulation* (`lo + step + step + ...`), not
 * `lo + i*step`: this replicates the historical serial capacity
 * loop bit-for-bit, which is what keeps grid-sampler enumeration
 * byte-identical to `expandGrid`.
 */
double
accumulate(double lo, double step, std::size_t i)
{
    double v = lo;
    for (std::size_t k = 0; k < i; ++k)
        v += step;
    return v;
}

} // namespace

AxisSpec
wheelbaseAxis(Quantity<Millimeters> lo, Quantity<Millimeters> step,
              std::size_t count)
{
    return latticeAxis(AxisKind::Wheelbase, lo.value(), step.value(),
                       count);
}

AxisSpec
capacityAxis(Quantity<MilliampHours> lo, Quantity<MilliampHours> step,
             std::size_t count)
{
    return latticeAxis(AxisKind::Capacity, lo.value(), step.value(),
                       count);
}

AxisSpec
twrAxis(double lo, double step, std::size_t count)
{
    return latticeAxis(AxisKind::Twr, lo, step, count);
}

AxisSpec
payloadAxis(Quantity<Grams> lo, Quantity<Grams> step,
            std::size_t count)
{
    return latticeAxis(AxisKind::Payload, lo.value(), step.value(),
                       count);
}

AxisSpec
cellsAxis(std::vector<int> cells)
{
    AxisSpec axis;
    axis.kind = AxisKind::Cells;
    axis.cells = std::move(cells);
    return axis;
}

AxisSpec
boardAxis(std::vector<ComputeBoardRecord> boards)
{
    AxisSpec axis;
    axis.kind = AxisKind::Board;
    axis.boards = std::move(boards);
    return axis;
}

AxisSpec
activityAxis(std::vector<FlightActivity> activities)
{
    AxisSpec axis;
    axis.kind = AxisKind::Activity;
    axis.activities = std::move(activities);
    return axis;
}

std::size_t
ExploreSpace::pointCount() const
{
    std::size_t total = 1;
    for (const AxisSpec &axis : axes) {
        const std::size_t n = axis.size();
        if (n == 0)
            return 0;
        if (total > std::numeric_limits<std::size_t>::max() / n)
            return std::numeric_limits<std::size_t>::max();
        total *= n;
    }
    return total;
}

double
ExploreSpace::axisValue(std::size_t axis, std::size_t i) const
{
    if (axis >= axes.size())
        fatal("ExploreSpace::axisValue: axis out of range");
    const AxisSpec &a = axes[axis];
    if (i >= a.size())
        fatal("ExploreSpace::axisValue: index out of range");
    switch (a.kind) {
    case AxisKind::Cells: return static_cast<double>(a.cells[i]);
    case AxisKind::Board:
    case AxisKind::Activity:
        return static_cast<double>(i);
    default: return accumulate(a.lo, a.step, i);
    }
}

DesignInputs
ExploreSpace::materialize(std::span<const std::size_t> index) const
{
    if (index.size() != axes.size())
        fatal("ExploreSpace::materialize: index arity mismatch");
    DesignInputs in = base;
    for (std::size_t d = 0; d < axes.size(); ++d) {
        const AxisSpec &axis = axes[d];
        const std::size_t i = index[d];
        if (i >= axis.size())
            fatal("ExploreSpace::materialize: index out of range on "
                  "axis " +
                  std::string(axisKindName(axis.kind)));
        switch (axis.kind) {
        case AxisKind::Wheelbase:
            in.wheelbaseMm = Quantity<Millimeters>(
                accumulate(axis.lo, axis.step, i));
            break;
        case AxisKind::Cells:
            in.cells = axis.cells[i];
            break;
        case AxisKind::Capacity:
            in.capacityMah = Quantity<MilliampHours>(
                accumulate(axis.lo, axis.step, i));
            break;
        case AxisKind::Twr:
            in.twr = accumulate(axis.lo, axis.step, i);
            break;
        case AxisKind::Board:
            in.compute = axis.boards[i];
            break;
        case AxisKind::Activity:
            in.activity = axis.activities[i];
            break;
        case AxisKind::Payload:
            in.payloadG = Quantity<Grams>(
                accumulate(axis.lo, axis.step, i));
            break;
        }
    }
    return in;
}

std::string
validateSpace(const ExploreSpace &space)
{
    if (space.axes.empty())
        return "space needs at least one axis";
    bool seen[7] = {};
    for (const AxisSpec &axis : space.axes) {
        const int k = static_cast<int>(axis.kind);
        if (k < 0 || k >= 7)
            return "corrupt axis kind";
        if (seen[k])
            return std::string("duplicate axis '") +
                   axisKindName(axis.kind) + "'";
        seen[k] = true;
        if (axis.size() == 0)
            return std::string("axis '") + axisKindName(axis.kind) +
                   "' is empty";
        switch (axis.kind) {
        case AxisKind::Cells:
            for (int c : axis.cells) {
                if (c < kMinCells || c > kMaxCells)
                    return "cells axis value out of [1, 6]";
            }
            break;
        case AxisKind::Board:
        case AxisKind::Activity:
            break;
        default:
            if (!std::isfinite(axis.lo) || !std::isfinite(axis.step))
                return std::string("axis '") +
                       axisKindName(axis.kind) +
                       "' has non-finite lattice parameters";
            if (axis.count > 1 && axis.step <= 0.0)
                return std::string("axis '") +
                       axisKindName(axis.kind) +
                       "' needs a positive step when count > 1";
            break;
        }
    }
    return "";
}

ExploreSpace
spaceFromSweepSpec(const SweepSpec &spec)
{
    if (spec.airframes.size() != 1)
        fatal("spaceFromSweepSpec: spec must have exactly one "
              "airframe");
    // Axis order mirrors the expandGrid nesting (board, activity,
    // cells, capacity innermost), so lexicographic enumeration with
    // the last axis fastest reproduces the grid sequence.
    ExploreSpace space;
    space.base.wheelbaseMm = spec.airframes[0].wheelbaseMm;
    space.base.propDiameterIn = spec.airframes[0].propDiameterIn;
    space.base.twr = spec.twr;
    space.base.escClass = spec.escClass;
    space.base.sensorWeightG = spec.sensorWeightG;
    space.base.sensorPowerW = spec.sensorPowerW;
    space.base.payloadG = spec.payloadG;

    std::size_t caps = 0;
    for (Quantity<MilliampHours> cap = spec.capacityLoMah;
         cap <= spec.capacityHiMah + Quantity<MilliampHours>(1e-9);
         cap += spec.capacityStepMah) {
        ++caps;
    }
    space.axes = {
        boardAxis(spec.boards),
        activityAxis(spec.activities),
        cellsAxis(spec.cells),
        capacityAxis(spec.capacityLoMah, spec.capacityStepMah, caps),
    };
    return space;
}

ExploreSpace
referenceSpace450(Quantity<MilliampHours> capacity_step)
{
    const SizeClassSpec &medium = classSpec(SizeClass::Medium);
    SweepSpec spec;
    spec.airframes = {{medium.wheelbaseMm, medium.propDiameterIn}};
    spec.boards = computeBoardTable();
    spec.activities = {FlightActivity::Hovering,
                       FlightActivity::Maneuvering};
    spec.cells.clear();
    for (int c = kMinCells; c <= kMaxCells; ++c)
        spec.cells.push_back(c);
    spec.capacityLoMah = medium.capacityLoMah;
    spec.capacityHiMah = medium.capacityHiMah;
    spec.capacityStepMah = capacity_step;

    ExploreSpace space = spaceFromSweepSpec(spec);
    // TWR leads so the trailing axes keep the expandGrid nesting of
    // each per-TWR slice.
    space.axes.insert(space.axes.begin(), twrAxis(1.5, 0.5, 4));
    return space;
}

ExploreSpace
wideSpace6(Quantity<MilliampHours> capacity_step)
{
    ExploreSpace space = referenceSpace450(capacity_step);
    space.axes.push_back(payloadAxis(Quantity<Grams>(0.0),
                                     Quantity<Grams>(150.0), 4));
    return space;
}

ExploreSpace
wideSpace7(Quantity<MilliampHours> capacity_step)
{
    ExploreSpace space = wideSpace6(capacity_step);
    // A wheelbase axis overrides the base 450 mm point; prop
    // diameter 0 lets each wheelbase pick its own largest prop.
    space.base.propDiameterIn = Quantity<Inches>(0.0);
    space.axes.insert(space.axes.begin(),
                      wheelbaseAxis(Quantity<Millimeters>(350.0),
                                    Quantity<Millimeters>(50.0), 4));
    return space;
}

} // namespace dronedse::explore
