#include "explore/uncertainty.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "components/battery.hh"
#include "components/esc.hh"
#include "components/frame.hh"
#include "components/motor.hh"
#include "components/propeller.hh"
#include "dse/weight_closure.hh"
#include "physics/lipo.hh"
#include "physics/loads.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse::explore {

SurveyModel
SurveyModel::paper()
{
    SurveyModel model;
    for (int cells = kMinCells; cells <= kMaxCells; ++cells)
        model.batteryFits[cells - 1] = paperBatteryFit(cells);
    model.escFits[static_cast<int>(EscClass::ShortFlight)] =
        paperEscFit(EscClass::ShortFlight);
    model.escFits[static_cast<int>(EscClass::LongFlight)] =
        paperEscFit(EscClass::LongFlight);
    model.frameFit = paperFrameFit();
    return model;
}

FitScatter
FitScatter::fromCatalogs(std::uint64_t seed, int replicates)
{
    if (replicates < 2)
        fatal("FitScatter::fromCatalogs: needs at least 2 "
              "replicates");

    std::array<std::vector<double>, 6> bat_slope, bat_icept;
    std::array<std::vector<double>, 2> esc_slope, esc_icept;
    std::vector<double> frame_slope, frame_icept;

    for (int rep = 0; rep < replicates; ++rep) {
        // One independent survey per replicate: fresh catalogs,
        // fresh fits, seeds spread by the SplitMix64 increment.
        Rng rng(seed + 0x9e3779b97f4a7c15ULL *
                           static_cast<std::uint64_t>(rep + 1));
        const std::vector<BatteryRecord> packs =
            generateBatteryCatalog(rng);
        const std::vector<EscRecord> escs = generateEscCatalog(rng);
        const std::vector<FrameRecord> frames =
            generateFrameCatalog(rng);
        for (int cells = kMinCells; cells <= kMaxCells; ++cells) {
            const LinearFit fit = fitBatteryCatalog(packs, cells);
            bat_slope[cells - 1].push_back(fit.slope);
            bat_icept[cells - 1].push_back(fit.intercept);
        }
        for (EscClass cls :
             {EscClass::ShortFlight, EscClass::LongFlight}) {
            const LinearFit fit = fitEscCatalog(escs, cls);
            esc_slope[static_cast<int>(cls)].push_back(fit.slope);
            esc_icept[static_cast<int>(cls)].push_back(fit.intercept);
        }
        const LinearFit fit = fitFrameCatalog(frames);
        frame_slope.push_back(fit.slope);
        frame_icept.push_back(fit.intercept);
    }

    FitScatter scatter;
    for (int i = 0; i < 6; ++i) {
        scatter.batterySlopeSd[i] = stddev(bat_slope[i]);
        scatter.batteryInterceptSd[i] = stddev(bat_icept[i]);
    }
    for (int i = 0; i < 2; ++i) {
        scatter.escSlopeSd[i] = stddev(esc_slope[i]);
        scatter.escInterceptSd[i] = stddev(esc_icept[i]);
    }
    scatter.frameSlopeSd = stddev(frame_slope);
    scatter.frameInterceptSd = stddev(frame_icept);
    return scatter;
}

SurveyModel
perturbSurveyModel(const SurveyModel &base, const FitScatter &scatter,
                   Rng &rng)
{
    // Fixed draw order (the reproducibility contract): battery
    // 1S..6S, then ESC short/long, then frame; slope before
    // intercept within each fit.
    SurveyModel model = base;
    for (int i = 0; i < 6; ++i) {
        model.batteryFits[i].slope =
            rng.gaussian(base.batteryFits[i].slope,
                         scatter.batterySlopeSd[i]);
        model.batteryFits[i].intercept =
            rng.gaussian(base.batteryFits[i].intercept,
                         scatter.batteryInterceptSd[i]);
    }
    for (int i = 0; i < 2; ++i) {
        model.escFits[i].slope =
            rng.gaussian(base.escFits[i].slope, scatter.escSlopeSd[i]);
        model.escFits[i].intercept = rng.gaussian(
            base.escFits[i].intercept, scatter.escInterceptSd[i]);
    }
    model.frameFit.slope =
        rng.gaussian(base.frameFit.slope, scatter.frameSlopeSd);
    model.frameFit.intercept =
        rng.gaussian(base.frameFit.intercept, scatter.frameInterceptSd);
    return model;
}

namespace {

/** `frameWeightG` with the caller's fit (same ramp below 200 mm). */
double
modelFrameWeightG(const LinearFit &fit, double wheelbase_mm)
{
    if (wheelbase_mm > 200.0)
        return fit.at(wheelbase_mm);
    const double boundary = fit.at(200.0);
    const double t =
        std::clamp((wheelbase_mm - 50.0) / 150.0, 0.0, 1.0);
    return 50.0 + t * (boundary - 50.0);
}

/** `escSetWeightG` with the caller's fit (same 10 g floor). */
double
modelEscSetWeightG(const LinearFit &fit, double max_current_a)
{
    return std::max(fit.at(max_current_a), 10.0);
}

} // namespace

DesignResult
solveDesignModel(const DesignInputs &inputs, const SurveyModel &model)
{
    // Mirror of dse::solveDesign with the three survey fits routed
    // through `model`.  Every branch, constant, iteration count, and
    // arithmetic order matches; the differential battery holds this
    // function to the original bit-for-bit at the paper model.
    DesignResult res;
    res.inputs = inputs;

    if (inputs.cells < kMinCells || inputs.cells > kMaxCells) {
        res.infeasibleReason = "cell count out of range";
        return res;
    }
    if (inputs.capacityMah.value() <= 0.0 || inputs.twr < 1.0 ||
        inputs.wheelbaseMm.value() <= 0.0) {
        res.infeasibleReason = "invalid capacity, TWR, or wheelbase";
        return res;
    }

    const Quantity<Inches> prop =
        inputs.propDiameterIn.value() > 0.0
            ? inputs.propDiameterIn
            : maxPropDiameterIn(inputs.wheelbaseMm);
    const Quantity<Volts> voltage = lipoPackVoltage(inputs.cells);

    res.frameWeightG = Quantity<Grams>(modelFrameWeightG(
        model.frameFit, inputs.wheelbaseMm.value()));
    res.batteryWeightG =
        Quantity<Grams>(model.batteryFits[inputs.cells - 1].at(
            inputs.capacityMah.value()));
    res.propSetWeightG = propellerSetWeightG(prop);
    res.wiringWeightG = wiringWeightG(res.frameWeightG);
    const Quantity<Grams> fixed_weight =
        res.frameWeightG + res.batteryWeightG + res.propSetWeightG +
        res.wiringWeightG + Quantity<Grams>(inputs.compute.weightG) +
        inputs.sensorWeightG + inputs.payloadG;

    const LinearFit &esc_fit =
        model.escFits[static_cast<int>(inputs.escClass)];
    Quantity<Grams> total = fixed_weight;
    MotorRecord motor;
    Quantity<Grams> esc_w{};
    bool converged = false;
    for (int iter = 0; iter < 60; ++iter) {
        const Quantity<GramsForce> thrust_per_motor =
            weightForce(total) * (inputs.twr / 4.0);
        motor = matchMotor(thrust_per_motor, prop, voltage);
        esc_w = Quantity<Grams>(
            modelEscSetWeightG(esc_fit, motor.maxCurrent().value()));
        const Quantity<Grams> new_total =
            fixed_weight + 4.0 * motor.weight() + esc_w;
        if (std::fabs((new_total - total).value()) < 0.01) {
            total = new_total;
            converged = true;
            break;
        }
        total = new_total;
        if (total.value() > 1.0e6)
            break;
    }
    if (!converged) {
        res.infeasibleReason = "weight closure diverged";
        return res;
    }

    res.totalWeightG = total;
    res.motor = motor;
    res.motorMaxCurrentA = motor.maxCurrent();
    res.motorSetWeightG = 4.0 * motor.weight();
    res.escSetWeightG = esc_w;
    res.basicWeightG = total - res.batteryWeightG -
                       res.motorSetWeightG - res.escSetWeightG;
    res.extremeKv = motor.kv > kExtremeKvThreshold;

    const double load = flyingLoadFraction(inputs.activity);
    res.maxPowerW = 4.0 * (motor.maxCurrent() * voltage);
    res.propulsionPowerW = res.maxPowerW * load;
    res.computePowerW = Quantity<Watts>(inputs.compute.powerW);
    res.sensorPowerW = inputs.sensorPowerW;
    res.avgPowerW =
        res.propulsionPowerW + res.computePowerW + res.sensorPowerW;

    res.usableEnergyWh = usableEnergyWh(inputs.capacityMah, voltage);
    res.flightTimeMin =
        wattHoursToMinutes(res.usableEnergyWh, res.avgPowerW);
    res.computePowerFraction = res.computePowerW / res.avgPowerW;

    const Quantity<Amperes> max_current_needed =
        4.0 * motor.maxCurrent();
    const Quantity<Amperes> pack_limit =
        (inputs.capacityMah * 80.0 / Quantity<Hours>(1.0))
            .to<Amperes>();
    if (pack_limit < max_current_needed) {
        res.infeasibleReason =
            "battery C-rating cannot supply max draw";
        return res;
    }

    res.feasible = true;
    return res;
}

UncertaintyResult
propagateUncertainty(const DesignInputs &point,
                     const UncertaintyOptions &options)
{
    return propagateUncertainty(
        point, options,
        FitScatter::fromCatalogs(options.seed,
                                 options.scatterReplicates));
}

UncertaintyResult
propagateUncertainty(const DesignInputs &point,
                     const UncertaintyOptions &options,
                     const FitScatter &scatter)
{
    if (options.samples == 0)
        fatal("propagateUncertainty: samples must be positive");

    UncertaintyResult out;
    out.nominal = solveDesign(point);
    out.samples = options.samples;

    // A fresh Rng per call means every design sees the identical
    // perturbation stream: common random numbers, so per-design
    // deltas are paired comparisons.
    Rng rng(options.seed);
    const SurveyModel base = SurveyModel::paper();
    std::vector<double> flight, weight;
    flight.reserve(options.samples);
    weight.reserve(options.samples);
    for (std::size_t i = 0; i < options.samples; ++i) {
        const SurveyModel model =
            perturbSurveyModel(base, scatter, rng);
        const DesignResult res = solveDesignModel(point, model);
        if (!res.feasible)
            continue;
        ++out.feasibleSamples;
        flight.push_back(res.flightTimeMin.value());
        weight.push_back(res.totalWeightG.value());
    }
    if (!flight.empty()) {
        out.flightTimeMin = Ecdf(std::move(flight));
        out.totalWeightG = Ecdf(std::move(weight));
    }
    return out;
}

} // namespace dronedse::explore
