/**
 * @file
 * Typed design-space boxes for adaptive exploration.
 *
 * An `ExploreSpace` generalizes the exhaustive `SweepSpec` grid: a
 * base `DesignInputs` point plus a list of `AxisSpec` lattices, one
 * per free variable.  Every axis is a *finite ordered lattice* — a
 * `lo + i*step` ladder for continuous variables, an explicit value
 * list for enumerated ones — so a candidate is just a vector of
 * per-axis indices.  Samplers draw index vectors, the driver crawls
 * the lattice neighborhood, and `materialize` turns an index vector
 * into the `DesignInputs` the solver consumes.
 *
 * Lattice values accumulate `lo + step + step + ...` exactly like
 * `expandGrid`'s capacity loop, so a space built from a `SweepSpec`
 * (`spaceFromSweepSpec`) materializes the *bit-identical* inputs the
 * grid would have produced — that is what makes frontier-set
 * comparisons against the exhaustive oracle exact rather than
 * epsilon-tolerant.
 */

#ifndef DRONEDSE_EXPLORE_SPACE_HH
#define DRONEDSE_EXPLORE_SPACE_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "components/compute_board.hh"
#include "dse/sweep.hh"

namespace dronedse::explore {

/** The design variable an axis spans. */
enum class AxisKind
{
    Wheelbase,
    Cells,
    Capacity,
    Twr,
    Board,
    Activity,
    Payload,
};

/** Wire/CSV spelling ("wheelbase_mm", "cells", ...). */
const char *axisKindName(AxisKind kind);

/** Inverse of `axisKindName`; returns false on unknown spelling. */
bool parseAxisKind(const std::string &name, AxisKind &out);

/** True for axes whose values are ordered (bisection applies). */
bool axisIsOrdered(AxisKind kind);

/**
 * One axis of a space: a finite ordered lattice of values.
 * Continuous axes store `lo`/`step` in the axis's natural unit
 * (raw doubles: this is a descriptor record, like the catalog
 * structs; the typed builders below are the public construction
 * surface).  Enumerated axes store their value list.
 */
struct AxisSpec
{
    AxisKind kind = AxisKind::Capacity;
    /** Continuous lattices: value_i = lo accumulated i steps. */
    double lo = 0.0;
    double step = 0.0;
    std::size_t count = 1;
    /** Valid when kind == Cells. */
    std::vector<int> cells;
    /** Valid when kind == Board. */
    std::vector<ComputeBoardRecord> boards;
    /** Valid when kind == Activity. */
    std::vector<FlightActivity> activities;

    /** Number of lattice positions on this axis. */
    std::size_t size() const;
};

/** Typed axis builders (the public construction surface). */
AxisSpec wheelbaseAxis(Quantity<Millimeters> lo,
                       Quantity<Millimeters> step, std::size_t count);
AxisSpec capacityAxis(Quantity<MilliampHours> lo,
                      Quantity<MilliampHours> step, std::size_t count);
AxisSpec twrAxis(double lo, double step, std::size_t count);
AxisSpec payloadAxis(Quantity<Grams> lo, Quantity<Grams> step,
                     std::size_t count);
AxisSpec cellsAxis(std::vector<int> cells);
AxisSpec boardAxis(std::vector<ComputeBoardRecord> boards);
AxisSpec activityAxis(std::vector<FlightActivity> activities);

/**
 * A design-space box: the base point plus one lattice per free
 * variable.  Axis order is significant — it fixes the index-vector
 * layout and the exhaustive (grid-sampler) enumeration order, which
 * runs lexicographically with the *last* axis fastest.
 */
struct ExploreSpace
{
    /** Values of every variable no axis overrides. */
    DesignInputs base;
    std::vector<AxisSpec> axes;

    std::size_t axisCount() const { return axes.size(); }

    /** Full lattice size (product of axis sizes, saturating). */
    std::size_t pointCount() const;

    /** The lattice value of axis `axis` at position `i`. */
    double axisValue(std::size_t axis, std::size_t i) const;

    /**
     * The `DesignInputs` at one index vector (`index.size()` must
     * equal `axisCount()`; every entry must be in range).
     */
    DesignInputs materialize(std::span<const std::size_t> index) const;
};

/**
 * Structural validation: at most one axis per kind, every axis
 * non-empty, cell values within the LiPo range, lattice steps
 * finite and positive when count > 1.  Returns an empty string when
 * valid, else the first violation (the serve planner surfaces it as
 * an `invalid_request` message).
 */
std::string validateSpace(const ExploreSpace &space);

/**
 * The space whose full lattice is exactly one `SweepSpec` grid:
 * axes [board, activity, cells, capacity] around the spec's single
 * airframe.  Grid enumeration of this space materializes the
 * bit-identical `DesignInputs` sequence `expandGrid(spec)` produces
 * (property-tested).  The spec must have exactly one airframe.
 */
ExploreSpace spaceFromSweepSpec(const SweepSpec &spec);

/**
 * The 450 mm reference space: TWR {1.5, 2.0, 2.5, 3.0} x the full
 * board table x both activities x cells {1..6} x capacity
 * 1000..8000 at `capacity_step`.  Five axes, 67680 lattice points
 * at the default 50 mAh step — the exhaustive-oracle workload of
 * the frontier-fidelity acceptance gate.
 */
ExploreSpace referenceSpace450(
    Quantity<MilliampHours> capacity_step = Quantity<MilliampHours>(
        50.0));

/**
 * A six-axis space no exhaustive grid can reasonably walk: the
 * reference space plus a payload axis {0, 150, 300, 450} g
 * (270720 lattice points at the 50 mAh step).
 */
ExploreSpace wideSpace6(
    Quantity<MilliampHours> capacity_step = Quantity<MilliampHours>(
        50.0));

/**
 * A seven-axis space (wideSpace6 plus a wheelbase axis
 * {350, 400, 450, 500} mm; ~1.08M lattice points) for headroom
 * studies beyond the acceptance gate.
 */
ExploreSpace wideSpace7(
    Quantity<MilliampHours> capacity_step = Quantity<MilliampHours>(
        50.0));

} // namespace dronedse::explore

#endif // DRONEDSE_EXPLORE_SPACE_HH
