/**
 * @file
 * AdaptiveDriver: budgeted boundary-refinement design-space search.
 *
 * One run interleaves three candidate sources over an
 * `ExploreSpace` lattice, spending a fixed evaluation budget where
 * the answers live instead of everywhere:
 *
 *   seed      — a batch from the configured `CandidateGenerator`
 *               (Sobol' by default) to locate the feasible region
 *   crawl     — lattice neighbors (within `neighborRadius` steps per
 *               axis) of every current frontier point; a frontier
 *               run discovered anywhere gets walked end to end
 *   bisect    — along each ordered axis of each frontier point,
 *               binary probes into the unevaluated gap between the
 *               outermost known-feasible and the first known-
 *               infeasible lattice position (the feasibility
 *               boundary Figure 9's "infeasible beyond here" edge
 *               traces)
 *
 * Rounds repeat — dedup, solve through the engine's memoized batch
 * path, fold the new points into the incremental Pareto frontier —
 * until refinement produces nothing new (converged), the budget is
 * spent, or `maxRounds` is hit.  When refinement dries up with
 * budget remaining, the driver tops back up from the generator, so
 * convergence means the generator ran dry too.
 *
 * Exactness: the driver only ever materializes lattice points of
 * the space, so `Pareto(evaluated)` equals the exhaustive-grid
 * frontier exactly when the evaluated set covers the true frontier
 * (dominance is transitive; no epsilon tolerance needed).  The
 * differential battery pins this on the 450 mm reference space.
 *
 * Determinism: candidates derive from (seed, frontier state) only;
 * the engine's batch solve is element-wise thread-count-invariant;
 * dedup bookkeeping uses unordered containers for membership tests
 * exclusively (never iteration).  Hence byte-identical results at
 * any `--jobs`, pinned by the explore CSV comparison tests.
 */

#ifndef DRONEDSE_EXPLORE_DRIVER_HH
#define DRONEDSE_EXPLORE_DRIVER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hh"
#include "explore/sampler.hh"
#include "explore/space.hh"

namespace dronedse::explore {

/** Budget and strategy knobs of one adaptive run. */
struct ExploreOptions
{
    /** Seed-batch strategy. */
    SamplerKind sampler = SamplerKind::Sobol;
    /** Stream seed for the stochastic samplers. */
    std::uint64_t seed = 17;
    /** Size of the round-0 (and top-up) generator batches. */
    std::size_t initialSamples = 512;
    /**
     * Per-round evaluation cap during refinement.  Smaller rounds
     * re-rank candidates against the updated frontier more often —
     * the bisection probes halve a boundary gap once per round, so
     * the cap bounds how far the boundaries converge within a
     * budget, at the cost of more (cheap) refolds.
     */
    std::size_t roundEvaluations = 128;
    /** Hard cap on solver evaluations across the whole run. */
    std::size_t maxEvaluations = 4096;
    /** Hard cap on refinement rounds. */
    std::size_t maxRounds = 64;
    /** Crawl distance (lattice steps per axis) around incumbents. */
    std::size_t neighborRadius = 1;
    /** Probe the feasibility boundary along ordered axes. */
    bool bisectBoundary = true;
};

/** Instrumentation record of one refinement round. */
struct RoundStats
{
    /** Candidates proposed before dedup and budget truncation. */
    std::size_t candidates = 0;
    /** Points actually solved this round. */
    std::size_t evaluated = 0;
    /** Total points solved after this round. */
    std::size_t cumulativeEvaluations = 0;
    /** Frontier size after folding this round in. */
    std::size_t frontierSize = 0;
    /** Cumulative feasible points after this round. */
    std::size_t feasiblePoints = 0;
};

/** Everything one adaptive run produces. */
struct ExploreResult
{
    /** Every solved point, in evaluation order. */
    std::vector<DesignResult> points;
    /** Lattice index vector of each point (parallel to `points`). */
    std::vector<std::vector<std::size_t>> indices;
    /** Indices into `points` of the Pareto frontier, ascending. */
    std::vector<std::size_t> frontier;
    /** One record per refinement round. */
    std::vector<RoundStats> rounds;
    /** Full lattice size of the explored space. */
    std::size_t spacePoints = 0;
    /**
     * Index into `points` of the feasible point with the maximum
     * flight time (`engine::bestFeasibleIndex` scan);
     * `points.size()` when nothing feasible was found.
     */
    std::size_t incumbent = 0;
    /** True when refinement and the generator both ran dry. */
    bool converged = false;

    std::size_t evaluations() const { return points.size(); }
};

/** A complete explore request (the serve layer's payload). */
struct ExploreQuery
{
    ExploreSpace space;
    ExploreOptions options;
};

/**
 * The driver itself: borrows an engine (whose memo cache carries
 * overlap across runs and queries) and owns the refinement policy.
 */
class AdaptiveDriver
{
  public:
    AdaptiveDriver(engine::SweepEngine &eng, ExploreOptions options);

    /** One budgeted adaptive run (fatal on an invalid space). */
    ExploreResult run(const ExploreSpace &space);

    const ExploreOptions &options() const { return options_; }

  private:
    engine::SweepEngine &engine_;
    ExploreOptions options_;
};

/**
 * Frontier as CSV (header + one row per frontier point, ascending
 * by evaluation index, `%.17g` values): byte-equal across runs and
 * thread counts for the same (space, options).
 */
std::string frontierCsv(const ExploreResult &result);

/** Round instrumentation as CSV (same byte-equality contract). */
std::string roundsCsv(const ExploreResult &result);

} // namespace dronedse::explore

#endif // DRONEDSE_EXPLORE_DRIVER_HH
