#include "explore/driver.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "engine/pareto.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace dronedse::explore {

namespace {

/**
 * Word-wise FNV-1a over an index vector.  The maps below use it for
 * membership tests only — they are never iterated, so the driver's
 * outputs cannot depend on bucket order.
 */
struct IndexVecHash
{
    std::size_t
    operator()(const std::vector<std::size_t> &v) const noexcept
    {
        std::uint64_t h = 14695981039346656037ULL;
        for (std::size_t x : v) {
            h ^= static_cast<std::uint64_t>(x);
            h *= 1099511628211ULL;
        }
        return static_cast<std::size_t>(h);
    }
};

using EvaluatedMap = std::unordered_map<std::vector<std::size_t>,
                                        std::size_t, IndexVecHash>;

const char *
activityCsvName(FlightActivity activity)
{
    switch (activity) {
    case FlightActivity::Hovering: return "hovering";
    case FlightActivity::Maneuvering: return "maneuvering";
    }
    panic("activityCsvName: corrupt activity");
    return "";
}

/**
 * Refinement candidates around the current frontier, in a fixed
 * order (frontier point ascending, then axis, then offset): the
 * lattice crawl neighborhood plus the boundary-bisection probes.
 */
std::vector<std::vector<std::size_t>>
refineCandidates(const ExploreSpace &space, const ExploreResult &result,
                 const EvaluatedMap &evaluated,
                 const ExploreOptions &options)
{
    std::vector<std::vector<std::size_t>> out;
    std::vector<std::size_t> probe;
    // Interior span fill first (highest value per solve when the
    // budget runs short): frontier runs along an ordered axis are
    // usually contiguous, so the midpoint between two frontier
    // points that differ only on that axis is a strong candidate.
    // Halving the gap each round closes a run interior in log steps
    // where the radius-1 crawl would need linearly many.
    for (std::size_t d = 0; d < space.axes.size(); ++d) {
        if (!axisIsOrdered(space.axes[d].kind))
            continue;
        // Ordered map: iteration order is the key order, never the
        // hash layout, so candidate order stays deterministic.
        std::map<std::vector<std::size_t>, std::vector<std::size_t>>
            lines;
        for (std::size_t f : result.frontier) {
            std::vector<std::size_t> key = result.indices[f];
            const std::size_t coord = key[d];
            key.erase(key.begin() +
                      static_cast<std::ptrdiff_t>(d));
            lines[std::move(key)].push_back(coord);
        }
        for (auto &[key, coords] : lines) {
            std::sort(coords.begin(), coords.end());
            for (std::size_t i = 1; i < coords.size(); ++i) {
                if (coords[i] - coords[i - 1] <= 1)
                    continue;
                probe = key;
                probe.insert(probe.begin() +
                                 static_cast<std::ptrdiff_t>(d),
                             (coords[i] + coords[i - 1]) / 2);
                out.push_back(probe);
            }
        }
    }
    // Rank axes by whether the frontier varies along them.  An axis
    // whose coordinate is the same across every frontier point (a
    // single twr, a single activity) is where refinement evals go to
    // die: every probe off the shared value is one step into a
    // dominated region.  Crawl the diverse axes first and leave the
    // uniform ones for whatever budget is left.
    // Three tiers within that: ordered diverse axes first (cheap
    // crawl + bisect probes that close runs), unordered diverse
    // fans second (one probe per alternative board per point — a
    // wide spray), uniform axes last.
    std::vector<std::size_t> axis_order;
    {
        std::vector<std::size_t> fans, uniform;
        for (std::size_t d = 0; d < space.axes.size(); ++d) {
            bool diverse = false;
            for (std::size_t f : result.frontier) {
                if (result.indices[f][d] !=
                    result.indices[result.frontier.front()][d]) {
                    diverse = true;
                    break;
                }
            }
            if (!diverse)
                uniform.push_back(d);
            else if (axisIsOrdered(space.axes[d].kind))
                axis_order.push_back(d);
            else
                fans.push_back(d);
        }
        axis_order.insert(axis_order.end(), fans.begin(),
                          fans.end());
        axis_order.insert(axis_order.end(), uniform.begin(),
                          uniform.end());
    }
    for (std::size_t d : axis_order) {
        const std::size_t size = space.axes[d].size();
        for (std::size_t f : result.frontier) {
            const std::vector<std::size_t> &p = result.indices[f];
            // Unordered axis (board, activity): index adjacency is
            // an accident of table order, so the neighborhood is the
            // whole fan — a frontier design on one board proposes
            // the same design on every board.  Without this, a
            // frontier island on a board nobody sits next to in the
            // table is unreachable at any budget.
            if (!axisIsOrdered(space.axes[d].kind)) {
                for (std::size_t v = 0; v < size; ++v) {
                    if (v == p[d])
                        continue;
                    probe = p;
                    probe[d] = v;
                    out.push_back(probe);
                }
                continue;
            }
            // Crawl: every lattice neighbor within the radius.  A
            // frontier run discovered anywhere extends itself one
            // step per round until its ends are mapped.
            for (std::size_t delta = 1;
                 delta <= options.neighborRadius; ++delta) {
                if (p[d] >= delta) {
                    probe = p;
                    probe[d] -= delta;
                    out.push_back(probe);
                }
                if (p[d] + delta < size) {
                    probe = p;
                    probe[d] += delta;
                    out.push_back(probe);
                }
            }
            if (!options.bisectBoundary ||
                !axisIsOrdered(space.axes[d].kind))
                continue;
            // Bisect: walk outward past the crawl radius.  Track the
            // outermost evaluated position still on the current
            // frontier and stop at the first evaluated one that is
            // off it — infeasible or dominated, either way the run
            // ends somewhere in between, and everything strictly
            // between them is unevaluated, so the midpoint halves
            // the unknown gap.  Walling on dominated points matters:
            // a frontier run's low end usually dies by domination,
            // not infeasibility, and without it the run would creep
            // one crawl step per round.  With no wall before the
            // axis edge, probe the edge — either the run reaches it
            // or it becomes the wall a later round bisects against.
            for (int dir : {-1, +1}) {
                std::size_t front_at = p[d];
                bool walled = false;
                std::size_t wall = 0;
                probe = p;
                for (std::size_t j = p[d];;) {
                    if (dir < 0 ? j == 0 : j + 1 >= size)
                        break;
                    j = dir < 0 ? j - 1 : j + 1;
                    probe[d] = j;
                    const auto it = evaluated.find(probe);
                    if (it == evaluated.end())
                        continue;
                    if (std::binary_search(result.frontier.begin(),
                                           result.frontier.end(),
                                           it->second)) {
                        front_at = j;
                        continue;
                    }
                    walled = true;
                    wall = j;
                    break;
                }
                if (walled) {
                    const std::size_t gap = wall > front_at
                                                ? wall - front_at
                                                : front_at - wall;
                    if (gap > 1) {
                        probe[d] = (wall + front_at) / 2;
                        out.push_back(probe);
                    }
                } else {
                    const std::size_t edge =
                        dir < 0 ? 0 : size - 1;
                    if (edge != p[d]) {
                        probe[d] = edge;
                        out.push_back(probe);
                    }
                }
            }
        }
    }
    return out;
}

/**
 * Fold newly evaluated points (from `first_new` on) into the
 * frontier: Pareto(A u B) == Pareto(Pareto(A) u B), so only the old
 * frontier plus the new points need the pairwise test.
 */
void
foldFrontier(ExploreResult &result, std::size_t first_new)
{
    std::vector<std::size_t> cand = result.frontier;
    for (std::size_t i = first_new; i < result.points.size(); ++i)
        cand.push_back(i);
    std::vector<DesignResult> sub;
    sub.reserve(cand.size());
    for (std::size_t i : cand)
        sub.push_back(result.points[i]);
    const std::vector<std::size_t> keep = engine::paretoFrontier(sub);
    result.frontier.clear();
    result.frontier.reserve(keep.size());
    // `cand` is ascending (old frontier ascending, new indices above
    // it) and `paretoFrontier` preserves input order, so the fold
    // keeps the frontier ascending by evaluation index.
    for (std::size_t k : keep)
        result.frontier.push_back(cand[k]);
}

} // namespace

AdaptiveDriver::AdaptiveDriver(engine::SweepEngine &eng,
                               ExploreOptions options)
    : engine_(eng), options_(options)
{
    if (options_.maxEvaluations == 0)
        fatal("AdaptiveDriver: maxEvaluations must be positive");
    if (options_.initialSamples == 0)
        fatal("AdaptiveDriver: initialSamples must be positive");
    if (options_.roundEvaluations == 0)
        fatal("AdaptiveDriver: roundEvaluations must be positive");
}

ExploreResult
AdaptiveDriver::run(const ExploreSpace &space)
{
    const std::string err = validateSpace(space);
    if (!err.empty())
        fatal("AdaptiveDriver::run: invalid space: " + err);
    obs::ScopedSpan span("explore.run", "explore");

    const std::unique_ptr<CandidateGenerator> gen =
        makeGenerator(options_.sampler, options_.seed);

    ExploreResult result;
    result.spacePoints = space.pointCount();

    EvaluatedMap evaluated;
    std::size_t feasible_total = 0;

    // Round 0 seeds from the generator; later rounds refine around
    // the frontier and fall back to the generator when refinement
    // runs dry with budget remaining.
    bool seeded_round = true;
    std::vector<std::vector<std::size_t>> candidates = gen->nextBatch(
        space,
        std::min(options_.initialSamples, options_.maxEvaluations));

    while (result.rounds.size() < options_.maxRounds) {
        const std::size_t remaining =
            options_.maxEvaluations - result.points.size();
        if (remaining == 0)
            break;

        // Dedup (order-preserving, against both prior evaluations
        // and this batch) and truncate to the round cap.  The cap
        // matters: refinement candidates are emitted best-first
        // (span fills, then diverse-axis probes, then the uniform-
        // axis tail), and capping each round re-ranks against the
        // *updated* frontier before the tail spends the budget.
        // Seed rounds use the full generator batch.
        const std::size_t round_cap = std::min(
            remaining, seeded_round ? options_.initialSamples
                                    : options_.roundEvaluations);
        std::vector<std::vector<std::size_t>> fresh;
        std::unordered_set<std::vector<std::size_t>, IndexVecHash>
            pending;
        for (std::vector<std::size_t> &c : candidates) {
            if (fresh.size() >= round_cap)
                break;
            if (evaluated.contains(c) || pending.contains(c))
                continue;
            pending.insert(c);
            fresh.push_back(std::move(c));
        }

        if (fresh.empty()) {
            if (!seeded_round) {
                candidates = gen->nextBatch(
                    space,
                    std::min(options_.initialSamples, remaining));
                seeded_round = true;
                continue;
            }
            result.converged = true;
            break;
        }

        RoundStats stats;
        stats.candidates = candidates.size();
        stats.evaluated = fresh.size();

        std::vector<DesignInputs> inputs;
        inputs.reserve(fresh.size());
        for (const std::vector<std::size_t> &c : fresh)
            inputs.push_back(space.materialize(c));
        const std::vector<DesignResult> solved =
            engine_.solvePoints(inputs);

        const std::size_t first_new = result.points.size();
        for (std::size_t i = 0; i < fresh.size(); ++i) {
            evaluated.emplace(fresh[i], result.points.size());
            if (solved[i].feasible)
                ++feasible_total;
            result.points.push_back(solved[i]);
            result.indices.push_back(std::move(fresh[i]));
        }
        foldFrontier(result, first_new);

        stats.cumulativeEvaluations = result.points.size();
        stats.frontierSize = result.frontier.size();
        stats.feasiblePoints = feasible_total;
        result.rounds.push_back(stats);

        candidates =
            refineCandidates(space, result, evaluated, options_);
        seeded_round = false;
    }

    result.incumbent = engine::bestFeasibleIndex(result.points);

    obs::MetricsRegistry &registry = obs::metrics();
    registry.counter("explore.runs").add(1);
    registry.counter("explore.evaluations").add(result.points.size());
    registry.counter("explore.rounds").add(result.rounds.size());
    registry.counter("explore.frontier_points")
        .add(result.frontier.size());
    if (result.converged)
        registry.counter("explore.converged").add(1);
    return result;
}

std::string
frontierCsv(const ExploreResult &result)
{
    std::string out =
        "wheelbase_mm,cells,capacity_mah,twr,payload_g,board,"
        "activity,flight_time_min,total_weight_g,compute_power_w,"
        "avg_power_w\n";
    char buf[256];
    for (std::size_t i : result.frontier) {
        const DesignResult &res = result.points[i];
        const DesignInputs &in = res.inputs;
        std::snprintf(buf, sizeof buf, "%.17g,%d,%.17g,%.17g,%.17g,",
                      in.wheelbaseMm.value(), in.cells,
                      in.capacityMah.value(), in.twr,
                      in.payloadG.value());
        out += buf;
        out += in.compute.name;
        out += ',';
        out += activityCsvName(in.activity);
        std::snprintf(buf, sizeof buf, ",%.17g,%.17g,%.17g,%.17g\n",
                      res.flightTimeMin.value(),
                      res.totalWeightG.value(),
                      res.computePowerW.value(), res.avgPowerW.value());
        out += buf;
    }
    return out;
}

std::string
roundsCsv(const ExploreResult &result)
{
    std::string out = "round,candidates,evaluated,cumulative_"
                      "evaluations,frontier_size,feasible_points\n";
    char buf[160];
    for (std::size_t r = 0; r < result.rounds.size(); ++r) {
        const RoundStats &s = result.rounds[r];
        std::snprintf(buf, sizeof buf, "%zu,%zu,%zu,%zu,%zu,%zu\n", r,
                      s.candidates, s.evaluated,
                      s.cumulativeEvaluations, s.frontierSize,
                      s.feasiblePoints);
        out += buf;
    }
    return out;
}

} // namespace dronedse::explore
