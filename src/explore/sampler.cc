#include "explore/sampler.hh"

#include <array>
#include <bit>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dronedse::explore {

const char *
samplerKindName(SamplerKind kind)
{
    switch (kind) {
    case SamplerKind::Grid: return "grid";
    case SamplerKind::UniformRandom: return "uniform";
    case SamplerKind::LatinHypercube: return "lhs";
    case SamplerKind::Sobol: return "sobol";
    }
    panic("samplerKindName: corrupt kind");
    return "";
}

bool
parseSamplerKind(const std::string &name, SamplerKind &out)
{
    if (name == "grid")
        out = SamplerKind::Grid;
    else if (name == "uniform")
        out = SamplerKind::UniformRandom;
    else if (name == "lhs")
        out = SamplerKind::LatinHypercube;
    else if (name == "sobol")
        out = SamplerKind::Sobol;
    else
        return false;
    return true;
}

namespace {

/** SplitMix64 step — the seed expander `Rng` itself uses. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<std::size_t>
axisSizes(const ExploreSpace &space)
{
    std::vector<std::size_t> sizes;
    sizes.reserve(space.axes.size());
    for (const AxisSpec &axis : space.axes)
        sizes.push_back(axis.size());
    return sizes;
}

/** Unit-cube coordinate -> lattice index. */
std::size_t
indexFromUnit(double u, std::size_t count)
{
    const auto i =
        static_cast<std::size_t>(u * static_cast<double>(count));
    return i >= count ? count - 1 : i;
}

/** Shared arity bookkeeping: a generator serves one space shape. */
class SpaceShapeCheck
{
  public:
    void check(const ExploreSpace &space)
    {
        if (dims_ == 0) {
            dims_ = space.axes.size();
            if (dims_ == 0)
                fatal("CandidateGenerator: space has no axes");
            return;
        }
        if (dims_ != space.axes.size())
            fatal("CandidateGenerator: axis arity changed between "
                  "nextBatch calls");
    }

    std::size_t dims() const { return dims_; }

  private:
    std::size_t dims_ = 0;
};

class GridGenerator final : public CandidateGenerator
{
  public:
    std::vector<std::vector<std::size_t>>
    nextBatch(const ExploreSpace &space, std::size_t n) override
    {
        shape_.check(space);
        if (cursor_.empty() && !exhausted_)
            cursor_.assign(space.axes.size(), 0);
        const std::vector<std::size_t> sizes = axisSizes(space);
        std::vector<std::vector<std::size_t>> out;
        while (!exhausted_ && out.size() < n) {
            out.push_back(cursor_);
            // Lexicographic increment, last axis fastest.
            std::size_t d = cursor_.size();
            while (d > 0) {
                --d;
                if (++cursor_[d] < sizes[d])
                    break;
                cursor_[d] = 0;
                if (d == 0)
                    exhausted_ = true;
            }
        }
        return out;
    }

    SamplerKind kind() const override { return SamplerKind::Grid; }

  private:
    SpaceShapeCheck shape_;
    std::vector<std::size_t> cursor_;
    bool exhausted_ = false;
};

class UniformGenerator final : public CandidateGenerator
{
  public:
    explicit UniformGenerator(std::uint64_t seed) : rng_(seed) {}

    std::vector<std::vector<std::size_t>>
    nextBatch(const ExploreSpace &space, std::size_t n) override
    {
        shape_.check(space);
        const std::vector<std::size_t> sizes = axisSizes(space);
        std::vector<std::vector<std::size_t>> out(n);
        for (std::size_t i = 0; i < n; ++i) {
            out[i].resize(sizes.size());
            for (std::size_t d = 0; d < sizes.size(); ++d)
                out[i][d] = indexFromUnit(rng_.uniform(), sizes[d]);
        }
        return out;
    }

    SamplerKind kind() const override
    {
        return SamplerKind::UniformRandom;
    }

  private:
    SpaceShapeCheck shape_;
    Rng rng_;
};

class LatinHypercubeGenerator final : public CandidateGenerator
{
  public:
    explicit LatinHypercubeGenerator(std::uint64_t seed) : rng_(seed)
    {
    }

    std::vector<std::vector<std::size_t>>
    nextBatch(const ExploreSpace &space, std::size_t n) override
    {
        shape_.check(space);
        if (n == 0)
            return {};
        const std::vector<std::size_t> sizes = axisSizes(space);
        // Per axis: a random permutation of the n strata, then one
        // uniform offset inside each stratum.  Sample i gets
        // stratum perm[i], so every axis marginal covers each
        // stratum exactly once per batch.
        std::vector<std::vector<double>> unit(
            sizes.size(), std::vector<double>(n));
        std::vector<std::size_t> perm(n);
        for (std::size_t d = 0; d < sizes.size(); ++d) {
            for (std::size_t i = 0; i < n; ++i)
                perm[i] = i;
            for (std::size_t i = n; i > 1; --i) {
                const auto j = static_cast<std::size_t>(
                    rng_.uniformInt(0,
                                    static_cast<std::int64_t>(i) - 1));
                std::swap(perm[i - 1], perm[j]);
            }
            for (std::size_t i = 0; i < n; ++i) {
                unit[d][i] = (static_cast<double>(perm[i]) +
                              rng_.uniform()) /
                             static_cast<double>(n);
            }
        }
        std::vector<std::vector<std::size_t>> out(n);
        for (std::size_t i = 0; i < n; ++i) {
            out[i].resize(sizes.size());
            for (std::size_t d = 0; d < sizes.size(); ++d)
                out[i][d] = indexFromUnit(unit[d][i], sizes[d]);
        }
        return out;
    }

    SamplerKind kind() const override
    {
        return SamplerKind::LatinHypercube;
    }

  private:
    SpaceShapeCheck shape_;
    Rng rng_;
};

/**
 * Primitive polynomial parameters of the first Sobol' dimensions
 * after the van-der-Corput dimension (Joe & Kuo's new-joe-kuo-6
 * table): degree `s`, coefficient bits `a`, and the initial
 * direction values m_1..m_s.
 */
struct SobolPoly
{
    int s;
    std::uint32_t a;
    std::array<std::uint32_t, 5> m;
};

constexpr std::array<SobolPoly, 9> kSobolPolys = {{
    {1, 0, {1, 0, 0, 0, 0}},
    {2, 1, {1, 3, 0, 0, 0}},
    {3, 1, {1, 3, 1, 0, 0}},
    {3, 2, {1, 1, 1, 0, 0}},
    {4, 1, {1, 1, 3, 3, 0}},
    {4, 4, {1, 3, 5, 13, 0}},
    {5, 2, {1, 1, 5, 5, 17}},
    {5, 4, {1, 1, 5, 5, 5}},
    {5, 7, {1, 1, 7, 11, 19}},
}};

constexpr int kSobolBits = 32;

class SobolGenerator final : public CandidateGenerator
{
  public:
    explicit SobolGenerator(std::uint64_t seed) : seed_(seed) {}

    std::vector<std::vector<std::size_t>>
    nextBatch(const ExploreSpace &space, std::size_t n) override
    {
        shape_.check(space);
        init(space.axes.size());
        const std::vector<std::size_t> sizes = axisSizes(space);
        std::vector<std::vector<std::size_t>> out(n);
        constexpr double scale = 1.0 / 4294967296.0; // 2^-32
        for (std::size_t i = 0; i < n; ++i) {
            out[i].resize(sizes.size());
            for (std::size_t d = 0; d < sizes.size(); ++d) {
                const double u =
                    static_cast<double>(cur_[d]) * scale;
                out[i][d] = indexFromUnit(u, sizes[d]);
            }
            // Gray-code advance: flip the direction of the lowest
            // zero bit of the point counter.
            const int bit = std::countr_zero(~index_);
            if (bit >= kSobolBits)
                fatal("SobolGenerator: 2^32-point sequence "
                      "exhausted");
            for (std::size_t d = 0; d < cur_.size(); ++d)
                cur_[d] ^= v_[d][bit];
            ++index_;
        }
        return out;
    }

    SamplerKind kind() const override { return SamplerKind::Sobol; }

  private:
    void init(std::size_t dims)
    {
        if (!v_.empty())
            return;
        if (dims > kMaxSobolDimensions)
            fatal("SobolGenerator: " + std::to_string(dims) +
                  " axes exceeds the direction-number table (" +
                  std::to_string(kMaxSobolDimensions) + ")");
        v_.assign(dims, {});
        for (std::size_t d = 0; d < dims; ++d) {
            auto &v = v_[d];
            if (d == 0) {
                for (int k = 0; k < kSobolBits; ++k)
                    v[k] = 1u << (31 - k);
            } else {
                const SobolPoly &p = kSobolPolys[d - 1];
                std::array<std::uint32_t, kSobolBits> m{};
                for (int k = 0; k < p.s; ++k)
                    m[k] = p.m[k];
                for (int k = p.s; k < kSobolBits; ++k) {
                    m[k] = m[k - p.s] ^ (m[k - p.s] << p.s);
                    for (int i = 1; i < p.s; ++i) {
                        if ((p.a >> (p.s - 1 - i)) & 1u)
                            m[k] ^= m[k - i] << i;
                    }
                }
                for (int k = 0; k < kSobolBits; ++k)
                    v[k] = m[k] << (31 - k);
            }
        }
        // Seeded digital shift: XORing a fixed random word into
        // every point preserves the dyadic (t,m,s)-net structure
        // while decorrelating streams of different seeds.
        cur_.resize(dims);
        std::uint64_t state = seed_;
        for (std::size_t d = 0; d < dims; ++d)
            cur_[d] = static_cast<std::uint32_t>(
                splitmix64(state) >> 32);
        index_ = 0;
    }

    SpaceShapeCheck shape_;
    std::uint64_t seed_;
    std::vector<std::array<std::uint32_t, kSobolBits>> v_;
    std::vector<std::uint32_t> cur_;
    std::uint32_t index_ = 0;
};

} // namespace

std::unique_ptr<CandidateGenerator>
makeGenerator(SamplerKind kind, std::uint64_t seed)
{
    switch (kind) {
    case SamplerKind::Grid:
        return std::make_unique<GridGenerator>();
    case SamplerKind::UniformRandom:
        return std::make_unique<UniformGenerator>(seed);
    case SamplerKind::LatinHypercube:
        return std::make_unique<LatinHypercubeGenerator>(seed);
    case SamplerKind::Sobol:
        return std::make_unique<SobolGenerator>(seed);
    }
    panic("makeGenerator: corrupt kind");
    return nullptr;
}

} // namespace dronedse::explore
