/**
 * @file
 * Risk-gated closeout: probabilistic acceptance checks over the
 * uncertainty ECDFs.
 *
 * A gate is a statistical claim a design must clear before the
 * exploration "closes out" on it — e.g. P[flight time >= 15 min]
 * >= 0.9 under survey-fit uncertainty.  Infeasible Monte-Carlo
 * samples count against every gate (a draw whose closure diverges
 * certainly does not meet the threshold), so the reported
 * probability is `#(feasible and meeting) / #samples`, never the
 * conditional-on-feasible one.
 *
 * `runRiskQuery` is the serve layer's `risk` request body: one
 * uncertainty propagation plus a gate evaluation, returned whole.
 */

#ifndef DRONEDSE_EXPLORE_GATE_HH
#define DRONEDSE_EXPLORE_GATE_HH

#include <string>
#include <vector>

#include "explore/uncertainty.hh"

namespace dronedse::explore {

/** The distribution a gate tests. */
enum class GateMetric
{
    FlightTimeMin,
    TotalWeightG,
};

/** Wire/CSV spelling ("flight_time_min", "total_weight_g"). */
const char *gateMetricName(GateMetric metric);

/** Inverse of `gateMetricName`; false on unknown spelling. */
bool parseGateMetric(const std::string &name, GateMetric &out);

/** Direction of the claim. */
enum class GateOp
{
    /** P[metric >= threshold] (flight time floors). */
    AtLeast,
    /** P[metric <= threshold] (weight ceilings). */
    AtMost,
};

/** Wire/CSV spelling ("at_least", "at_most"). */
const char *gateOpName(GateOp op);

/** Inverse of `gateOpName`; false on unknown spelling. */
bool parseGateOp(const std::string &name, GateOp &out);

/** One probabilistic acceptance requirement. */
struct GateSpec
{
    GateMetric metric = GateMetric::FlightTimeMin;
    GateOp op = GateOp::AtLeast;
    /** Threshold in the metric's natural unit (min or g). */
    double threshold = 0.0;
    /** Required probability of meeting the threshold. */
    double minProbability = 0.9;
};

/** One gate evaluated against one uncertainty result. */
struct GateOutcome
{
    GateSpec spec;
    /** P[gate met], infeasible samples counted as misses. */
    double probability = 0.0;
    bool pass = false;
};

/** The closeout verdict of one design point. */
struct GateReport
{
    std::vector<GateOutcome> gates;
    std::size_t samples = 0;
    double feasibleFraction = 0.0;
    /** True when every gate passed (vacuously true for none). */
    bool allPass = true;
};

/** Evaluate gates against a propagated uncertainty result. */
GateReport evaluateGates(const UncertaintyResult &uncertainty,
                         const std::vector<GateSpec> &gates);

/** Human-readable one-line-per-gate rendering. */
std::string gateReportText(const GateReport &report);

/** CSV rendering (`%.17g` values; byte-stable). */
std::string gateReportCsv(const GateReport &report);

/** A complete risk request (the serve layer's payload). */
struct RiskQuery
{
    DesignInputs point;
    UncertaintyOptions options;
    std::vector<GateSpec> gates;
    /** Extra flight-time quantiles to report (each in [0, 1]). */
    std::vector<double> quantiles;
};

/** Everything one risk query produces. */
struct RiskOutcome
{
    UncertaintyResult uncertainty;
    GateReport report;
};

/**
 * Propagate and gate one design point.  The two-argument form
 * reuses a precomputed scatter (batch callers derive it once).
 */
RiskOutcome runRiskQuery(const RiskQuery &query);
RiskOutcome runRiskQuery(const RiskQuery &query,
                         const FitScatter &scatter);

} // namespace dronedse::explore

#endif // DRONEDSE_EXPLORE_GATE_HH
