/**
 * @file
 * Work-stealing thread pool for batch design-space sweeps.
 *
 * The pool owns N-1 persistent workers; the caller participates as
 * worker 0, so a single-threaded pool runs entirely inline and a
 * sweep on a one-core host costs no context switches.  `parallelFor`
 * partitions an index range into chunks, deals them round-robin onto
 * per-worker deques, and lets idle workers steal from the back of a
 * victim's deque.  Because callers write results into pre-allocated
 * slots indexed by grid position, the steal order never affects the
 * output — that is the engine's determinism contract (DESIGN.md §9).
 *
 * This is pool plumbing, not model code: indices and timings are raw
 * integers/doubles by design; typed `Quantity` stops at the engine's
 * public API.
 */

#ifndef DRONEDSE_ENGINE_THREAD_POOL_HH
#define DRONEDSE_ENGINE_THREAD_POOL_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.hh"

namespace dronedse::engine {

/** Per-worker accounting of one `parallelFor` run. */
struct WorkerStats
{
    /** Grid points this worker solved. */
    std::uint64_t itemsProcessed = 0;
    /** Chunks stolen from other workers' deques. */
    std::uint64_t chunksStolen = 0;
    /** Time spent inside the loop body, seconds. */
    double busySeconds = 0.0;
};

/**
 * A fixed-size work-stealing pool.  Safe to reuse across many
 * `parallelFor` calls; the workers sleep between jobs.
 */
class ThreadPool
{
  public:
    /** 0 threads means hardware concurrency (at least 1). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(workers_.size()) + 1; }

    /**
     * Run `body(index, worker)` for every index in [0, count),
     * blocking until all indices are done.  Chunks of `chunk_size`
     * consecutive indices are dealt round-robin across workers;
     * `chunk_size` 0 picks a size that gives each worker ~4 chunks.
     *
     * The body must be safe to call concurrently from different
     * workers on different indices.  Per-worker stats for this run
     * are available from `lastRunStats()` afterwards.
     */
    void parallelFor(std::size_t count, std::size_t chunk_size,
                     const std::function<void(std::size_t, int)> &body);

    /**
     * Chunk-granular variant: run `body(begin, end, worker)` once
     * per dealt/stolen chunk instead of once per index.  This is the
     * engine's batching hook — a chunk body can hand the whole
     * [begin, end) range to the SoA batch solver in one call.  Same
     * dealing, stealing, stats, and blocking semantics as
     * `parallelFor` (which is implemented on top of this).
     */
    void parallelForChunks(
        std::size_t count, std::size_t chunk_size,
        const std::function<void(std::size_t, std::size_t, int)> &body);

    /**
     * Stats of the most recent `parallelFor`, one entry per worker.
     * Only meaningful between jobs: each slot is written exclusively
     * by its owning worker during a run (indexed-slot discipline,
     * not a mutex), and `parallelFor` does not return until every
     * worker has quiesced.
     */
    const std::vector<WorkerStats> &lastRunStats() const
    {
        return stats_;
    }

  private:
    struct Chunk
    {
        std::size_t begin = 0;
        std::size_t end = 0;
    };

    /** One worker's chunk deque; owner pops front, thieves pop back. */
    struct WorkQueue
    {
        util::Mutex mutex;
        std::deque<Chunk> chunks DDSE_GUARDED_BY(mutex);
    };

    /** Internal job unit: a chunk-range body. */
    using Body = std::function<void(std::size_t, std::size_t, int)>;

    void workerLoop(int worker) DDSE_EXCLUDES(jobMutex_);
    /** Drain chunks with an explicit body: no racy `body_` reads. */
    void runWorker(int worker, const Body &body);
    bool popLocal(int worker, Chunk &out);
    bool steal(int worker, Chunk &out);

    std::vector<std::thread> workers_;
    std::vector<std::unique_ptr<WorkQueue>> queues_;
    /** Per-worker slots, owned by their worker during a run. */
    std::vector<WorkerStats> stats_;

    // Job hand-off: generation bumps when a new job is published;
    // workers wake, snapshot `body_` under the mutex, drain the
    // queues, and the last one to finish signals completion.
    util::Mutex jobMutex_;
    util::CondVar jobReady_;
    util::CondVar jobDone_;
    std::uint64_t generation_ DDSE_GUARDED_BY(jobMutex_) = 0;
    int activeWorkers_ DDSE_GUARDED_BY(jobMutex_) = 0;
    bool shutdown_ DDSE_GUARDED_BY(jobMutex_) = false;
    const Body *body_ DDSE_GUARDED_BY(jobMutex_) = nullptr;
};

} // namespace dronedse::engine

#endif // DRONEDSE_ENGINE_THREAD_POOL_HH
