/**
 * @file
 * Instrumentation of one engine sweep: throughput, cache rates, and
 * per-thread utilization, with a JSON dump for the bench trajectory
 * (`BENCH_sweep.json`).
 *
 * Header-only on purpose: the fields are the raw counters the pool
 * and cache already maintain; this file only names and serializes
 * them.
 */

#ifndef DRONEDSE_ENGINE_STATS_HH
#define DRONEDSE_ENGINE_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "engine/memo_cache.hh"
#include "engine/thread_pool.hh"
#include "util/json.hh"

namespace dronedse::engine {

/** Everything measured about one `SweepEngine::run`. */
struct SweepStats
{
    /** Grid points in the spec (feasible or not). */
    std::size_t gridPoints = 0;
    /** Points that solved to a feasible design. */
    std::size_t feasiblePoints = 0;
    /** Points on the Pareto frontier. */
    std::size_t frontierPoints = 0;
    /** Wall-clock time of the sweep, seconds. */
    double wallSeconds = 0.0;
    /** Grid points per wall-clock second. */
    double pointsPerSecond = 0.0;
    /** Worker count (caller included). */
    int threads = 1;
    /** Cache counter deltas attributable to this sweep. */
    CacheCounters cache;
    /** Per-worker utilization of the sweep's `parallelFor`. */
    std::vector<WorkerStats> perThread;

    /** Fraction of wall time worker `i` spent solving points. */
    double utilization(std::size_t i) const
    {
        if (i >= perThread.size() || wallSeconds <= 0.0)
            return 0.0;
        return perThread[i].busySeconds / wallSeconds;
    }

    /** One JSON object, schema documented in DESIGN.md §9. */
    std::string toJson() const
    {
        const auto num = [](double v) { return jsonNumber(v, 6); };
        std::string out = "{";
        out += "\"grid_points\": " + std::to_string(gridPoints);
        out += ", \"feasible_points\": " +
               std::to_string(feasiblePoints);
        out += ", \"frontier_points\": " +
               std::to_string(frontierPoints);
        out += ", \"wall_seconds\": " + num(wallSeconds);
        out += ", \"points_per_second\": " + num(pointsPerSecond);
        out += ", \"threads\": " + std::to_string(threads);
        out += ", \"cache\": {\"hits\": " + std::to_string(cache.hits);
        out += ", \"misses\": " + std::to_string(cache.misses);
        out += ", \"evictions\": " + std::to_string(cache.evictions);
        out += ", \"hit_rate\": " + num(cache.hitRate()) + "}";
        out += ", \"per_thread\": [";
        for (std::size_t i = 0; i < perThread.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += "{\"items\": " +
                   std::to_string(perThread[i].itemsProcessed);
            out += ", \"steals\": " +
                   std::to_string(perThread[i].chunksStolen);
            out += ", \"busy_seconds\": " +
                   num(perThread[i].busySeconds);
            out += ", \"utilization\": " + num(utilization(i)) + "}";
        }
        out += "]}";
        return out;
    }
};

} // namespace dronedse::engine

#endif // DRONEDSE_ENGINE_STATS_HH
