/**
 * @file
 * SweepEngine: the batch query API over the DSE model.
 *
 * Submit a `SweepSpec` (axis ranges, see dse/sweep.hh), get back a
 * `SweepResult`: every grid point solved, the feasible envelope, and
 * the exact Pareto frontier of flight time vs compute capability vs
 * all-up weight, plus a `SweepStats` instrumentation record.
 *
 * Determinism contract: `run(spec).points` is element-wise identical
 * to `runSweepSerial(spec)` at any thread count.  This holds because
 * (1) both paths expand the identical `expandGrid` point sequence,
 * (2) each worker writes its result into the slot indexed by grid
 * position, and (3) `solveDesign` is a pure function of its inputs,
 * so a memo hit returns exactly what a fresh solve would.
 */

#ifndef DRONEDSE_ENGINE_ENGINE_HH
#define DRONEDSE_ENGINE_ENGINE_HH

#include <cstddef>
#include <span>
#include <vector>

#include "dse/sweep.hh"
#include "engine/memo_cache.hh"
#include "engine/stats.hh"
#include "engine/thread_pool.hh"
#include "util/thread_annotations.hh"

namespace dronedse::engine {

/** Tuning knobs of one engine instance. */
struct EngineOptions
{
    /** Worker count, caller included; 0 = hardware concurrency. */
    int threads = 0;
    /** Total memo-cache entries across shards. */
    std::size_t cacheCapacity = 1 << 20;
    /** Grid indices per work chunk; 0 = ~4 chunks per worker. */
    std::size_t chunkSize = 0;
    /**
     * Solve each chunk's cache misses through the SoA batch kernel
     * (`solveDesignBatch`) instead of one `solveDesign` per point.
     * Results are bit-identical either way (the differential battery
     * holds the kernel to the scalar oracle); off is the scalar
     * reference path for benches and differential tests.
     */
    bool batchSolve = true;
};

/** Everything `run` produces for one spec. */
struct SweepResult
{
    /** One solved result per grid point, in `expandGrid` order. */
    std::vector<DesignResult> points;
    /** Indices into `points` of the feasible envelope, ascending. */
    std::vector<std::size_t> feasible;
    /** Indices into `points` of the Pareto frontier, ascending. */
    std::vector<std::size_t> frontier;
    /** Throughput / cache / utilization record of this run. */
    SweepStats stats;

    /** The feasible results only, in grid order (the serial
     *  `sweepCapacity` contract). */
    std::vector<DesignResult> feasibleSeries() const;
};

/**
 * The engine: a work-stealing pool plus a memo cache, reusable
 * across many sweeps.  The cache persists between `run` calls, so
 * overlapping specs (the Figure 10 panels re-reading each battery
 * family per weight bucket) pay for each distinct point once.
 *
 * Thread-safe for concurrent `solve` calls.  Concurrent `run`
 * calls are safe too: they serialize on an internal mutex (one
 * sweep at a time per engine), which is the batching hook the
 * serve layer leans on — server workers submit whole coalesced
 * batches from many threads and the engine orders them while the
 * shared memo cache deduplicates their overlapping points.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(EngineOptions options = {});

    /** Solve a whole spec; see the determinism contract above. */
    SweepResult run(const SweepSpec &spec) DDSE_EXCLUDES(runMutex_);

    /** Memoized single-point solve through the engine's cache. */
    DesignResult solve(const DesignInputs &inputs);

    /**
     * Batched solve of an explicit point list (no grid expansion,
     * no frontier pass): `out[i] == solve(points[i])` element-wise,
     * at any thread count.  This is the adaptive explorer's inner
     * loop — each refinement round hands the engine whatever point
     * set it decided to evaluate and the memo cache deduplicates
     * re-visits across rounds and queries.
     */
    std::vector<DesignResult>
    solvePoints(std::span<const DesignInputs> points)
        DDSE_EXCLUDES(runMutex_);

    /**
     * Engine-backed best configuration of a size class: max flight
     * time over cells {1..6} x capacity within the practical
     * envelope.  Identical scan order (and therefore identical
     * tie-breaking) to the serial `bestConfiguration`.
     */
    DesignResult bestConfiguration(
        const SizeClassSpec &spec, const ComputeBoardRecord &compute,
        Quantity<MilliampHours> step = Quantity<MilliampHours>(250.0),
        double twr = 2.0) DDSE_EXCLUDES(runMutex_);

    int threadCount() const { return pool_.threadCount(); }

    /** Lifetime cache counters (across all runs of this engine). */
    CacheCounters cacheCounters() const { return cache_.counters(); }

    /**
     * Drop every memoized entry (lifetime counters are kept).  The
     * cold-cache bench mode resets with this between passes so its
     * batch-vs-scalar numbers measure raw solves, not cache hits.
     */
    void clearCache() { cache_.clear(); }

    /**
     * Stats of the most recent `run`, as one consistent copy taken
     * under the run mutex (a concurrent `run` may be rewriting the
     * stats while a caller reads them).
     */
    SweepStats lastRunStats() const DDSE_EXCLUDES(runMutex_)
    {
        util::MutexLock lock(runMutex_);
        return lastStats_;
    }

  private:
    EngineOptions options_;
    ThreadPool pool_;
    MemoCache cache_;
    /** Serializes `run` (and `lastStats_` updates) across callers. */
    mutable util::Mutex runMutex_;
    SweepStats lastStats_ DDSE_GUARDED_BY(runMutex_);
};

/**
 * Process-wide shared engine (lazy, thread-safe construction) used
 * by the `core` facade so repeated `DroneDesigner` reports and
 * figure benches share one memo cache.
 */
SweepEngine &sharedEngine();

/**
 * The best-configuration scan as a free function over an already
 * solved point list: index of the feasible result with the maximum
 * flight time, optionally restricted to a size class's practical
 * envelope.  Scan order is input order and only a *strictly*
 * greater flight time displaces the incumbent, so running it over
 * an `expandGrid` sequence reproduces the serial search's
 * tie-breaking exactly.  Returns `points.size()` when nothing
 * qualifies.
 */
std::size_t
bestFeasibleIndex(std::span<const DesignResult> points,
                  const SizeClassSpec *practical = nullptr);

} // namespace dronedse::engine

#endif // DRONEDSE_ENGINE_ENGINE_HH
