#include "engine/memo_cache.hh"

#include <cmath>
#include <utility>
#include <vector>

#include "dse/batch_solve.hh"
#include "dse/weight_closure.hh"
#include "util/logging.hh"

namespace dronedse::engine {

namespace {

/**
 * Quantization grid: 1e-6 of the field's own unit.  Sweep axes step
 * in whole mAh/mm/grams, so distinct grid points sit ~1e6 quanta
 * apart — aliasing across a feasibility boundary would need two
 * inputs closer than any sweep ever generates.
 */
constexpr double kQuantaPerUnit = 1e6;

std::int64_t
quantize(double value)
{
    return static_cast<std::int64_t>(
        std::llround(value * kQuantaPerUnit));
}

} // namespace

DesignKey
quantizeInputs(const DesignInputs &inputs)
{
    DesignKey key;
    key.wheelbaseUm = quantize(inputs.wheelbaseMm.value());
    key.propDiameterUin = quantize(inputs.propDiameterIn.value());
    key.capacityUmah = quantize(inputs.capacityMah.value());
    key.twrMicro = quantize(inputs.twr);
    key.boardWeightUg = quantize(inputs.compute.weightG);
    key.boardPowerUw = quantize(inputs.compute.powerW);
    key.sensorWeightUg = quantize(inputs.sensorWeightG.value());
    key.sensorPowerUw = quantize(inputs.sensorPowerW.value());
    key.payloadUg = quantize(inputs.payloadG.value());
    key.cells = inputs.cells;
    key.escClass = static_cast<int>(inputs.escClass);
    key.boardClass = static_cast<int>(inputs.compute.boardClass);
    key.activity = static_cast<int>(inputs.activity);
    key.boardName = inputs.compute.name;
    key.hash = hashKey(key);
    return key;
}

std::size_t
hashKey(const DesignKey &key)
{
    // Word-wise FNV-1a (one xor-multiply per 64-bit field instead of
    // eight byte steps), the four small enums packed into a single
    // word, then a splitmix64-style finalizer so the high bits that
    // pick the shard avalanche even when inputs differ only in low
    // bits.  ~10x cheaper than the byte-at-a-time mix this replaces
    // — the hash ran once per map probe before it was cached in the
    // key, so it sat squarely on the cold path.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(key.wheelbaseUm));
    mix(static_cast<std::uint64_t>(key.propDiameterUin));
    mix(static_cast<std::uint64_t>(key.capacityUmah));
    mix(static_cast<std::uint64_t>(key.twrMicro));
    mix(static_cast<std::uint64_t>(key.boardWeightUg));
    mix(static_cast<std::uint64_t>(key.boardPowerUw));
    mix(static_cast<std::uint64_t>(key.sensorWeightUg));
    mix(static_cast<std::uint64_t>(key.sensorPowerUw));
    mix(static_cast<std::uint64_t>(key.payloadUg));
    mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             key.cells))
         << 32) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             key.escClass))
         << 16) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             key.boardClass))
         << 8) ^
        static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(key.activity)));
    mix(std::hash<std::string>{}(key.boardName));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
}

MemoCache::MemoCache(std::size_t capacity)
{
    if (capacity < kShards)
        capacity = kShards;
    shardCapacity_ = capacity / kShards;
}

MemoCache::Shard &
MemoCache::shardFor(const DesignKey &, std::size_t hash)
{
    // The low bits feed the map's bucket index; pick the shard from
    // the high bits so the two selections stay independent.
    return shards_[(hash >> 48) % kShards];
}

std::optional<DesignResult>
MemoCache::lookup(const DesignKey &key)
{
    const std::size_t hash = DesignKeyHash{}(key);
    Shard &shard = shardFor(key, hash);
    util::MutexLock lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        ++shard.counters.misses;
        return std::nullopt;
    }
    ++shard.counters.hits;
    return it->second;
}

bool
MemoCache::lookup(const DesignKey &key, DesignResult &out)
{
    const std::size_t hash = DesignKeyHash{}(key);
    Shard &shard = shardFor(key, hash);
    util::MutexLock lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        ++shard.counters.misses;
        return false;
    }
    ++shard.counters.hits;
    out = it->second;
    return true;
}

void
MemoCache::insert(const DesignKey &key, const DesignResult &result)
{
    const std::size_t hash = DesignKeyHash{}(key);
    Shard &shard = shardFor(key, hash);
    util::MutexLock lock(shard.mutex);
    const auto [it, inserted] = shard.entries.try_emplace(key, result);
    if (!inserted)
        return;
    shard.order.push_back(key);
    while (shard.entries.size() > shardCapacity_) {
        shard.entries.erase(shard.order.front());
        shard.order.pop_front();
        ++shard.counters.evictions;
    }
}

DesignResult
MemoCache::solve(const DesignInputs &inputs)
{
    const DesignKey key = quantizeInputs(inputs);
    if (auto cached = lookup(key))
        return *std::move(cached);
    DesignResult result = solveDesign(inputs);
    insert(key, result);
    return result;
}

void
MemoCache::solveBatch(std::span<const DesignInputs> inputs,
                      std::span<DesignResult> results)
{
    if (inputs.size() != results.size())
        fatal("MemoCache::solveBatch: inputs/results size mismatch");

    struct Duplicate
    {
        std::size_t index;  // slot to fill
        std::size_t source; // earlier slot with the same key
    };

    // Pass 1: look every input up.  A repeat of a key that already
    // missed in this batch is deferred — solving it again would both
    // waste the solve and double-count the miss the sequential path
    // scores only once.  The duplicate map keys on *indices* into
    // `keys` (each key carries its hash from `quantizeInputs`) so
    // tracking a miss never copies a DesignKey, and hits land in the
    // caller's slot directly — no optional round-trip: the cache
    // wrapper must stay thin enough not to eat the kernel's
    // raw-compute win.
    std::vector<DesignKey> keys;
    keys.reserve(inputs.size());
    struct IndexHash
    {
        const std::vector<DesignKey> *keys;
        std::size_t operator()(std::size_t i) const
        {
            return (*keys)[i].hash;
        }
    };
    struct IndexEq
    {
        const std::vector<DesignKey> *keys;
        bool operator()(std::size_t a, std::size_t b) const
        {
            return (*keys)[a] == (*keys)[b];
        }
    };
    std::unordered_map<std::size_t, std::size_t, IndexHash, IndexEq>
        missed_at(0, IndexHash{&keys}, IndexEq{&keys});
    std::vector<std::size_t> pending; // unique misses, batch order
    std::vector<Duplicate> duplicates;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        keys.push_back(quantizeInputs(inputs[i]));
        if (const auto it = missed_at.find(i); it != missed_at.end()) {
            duplicates.push_back({i, it->second});
            continue;
        }
        if (lookup(keys[i], results[i]))
            continue;
        missed_at.emplace(i, i);
        pending.push_back(i);
    }

    // All-miss, no-duplicate batches — every cold chunk of a real
    // sweep — skip the gather entirely: the kernel reads and writes
    // the caller's storage and the results are inserted in place.
    if (pending.size() == inputs.size()) {
        solveDesignBatch(inputs, results);
        for (std::size_t i = 0; i < inputs.size(); ++i)
            insert(keys[i], results[i]);
        return;
    }

    // Pass 2: the misses ride the SoA kernel together — this is the
    // whole point of chunk-level batching (DESIGN.md §15).
    std::vector<DesignInputs> miss_inputs;
    miss_inputs.reserve(pending.size());
    for (std::size_t i : pending)
        miss_inputs.push_back(inputs[i]);
    std::vector<DesignResult> miss_results(pending.size());
    solveDesignBatch(std::span<const DesignInputs>(miss_inputs),
                     std::span<DesignResult>(miss_results));

    // Pass 3: insert in batch order, matching the FIFO eviction
    // order a sequential replay would have produced.
    for (std::size_t k = 0; k < pending.size(); ++k) {
        insert(keys[pending[k]], miss_results[k]);
        results[pending[k]] = std::move(miss_results[k]);
    }

    // Pass 4: duplicates copy the solved result and replay the hit
    // the sequential path would have scored against the insert, so
    // hits + misses advance by exactly the batch size.
    for (const Duplicate &dup : duplicates) {
        recordHit(keys[dup.index]);
        results[dup.index] = results[dup.source];
    }
}

void
MemoCache::recordHit(const DesignKey &key)
{
    const std::size_t hash = DesignKeyHash{}(key);
    Shard &shard = shardFor(key, hash);
    util::MutexLock lock(shard.mutex);
    ++shard.counters.hits;
}

CacheCounters
MemoCache::counters() const DDSE_NO_THREAD_SAFETY_ANALYSIS
{
    // Hold every shard lock at once (ascending index, so concurrent
    // snapshots cannot deadlock) and sum: the triple is a single
    // consistent cut across the cache, not three racing reads.
    // Analysis opt-out: the lock set is a loop over an array, which
    // the capability checker cannot model; the ascending-acquire /
    // descending-release pairing below is the whole discipline.
    for (std::size_t i = 0; i < kShards; ++i)
        shards_[i].mutex.lock();
    CacheCounters out;
    for (const auto &shard : shards_) {
        out.hits += shard.counters.hits;
        out.misses += shard.counters.misses;
        out.evictions += shard.counters.evictions;
    }
    for (std::size_t i = kShards; i-- > 0;)
        shards_[i].mutex.unlock();
    return out;
}

std::size_t
MemoCache::size() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        util::MutexLock lock(shard.mutex);
        total += shard.entries.size();
    }
    return total;
}

void
MemoCache::clear()
{
    for (auto &shard : shards_) {
        util::MutexLock lock(shard.mutex);
        shard.entries.clear();
        shard.order.clear();
    }
}

} // namespace dronedse::engine
