#include "engine/pareto.hh"

namespace dronedse::engine {

bool
dominates(const DesignResult &a, const DesignResult &b)
{
    if (!a.feasible || !b.feasible)
        return false;
    const bool no_worse =
        a.flightTimeMin >= b.flightTimeMin &&
        a.computePowerW >= b.computePowerW &&
        a.totalWeightG <= b.totalWeightG;
    if (!no_worse)
        return false;
    return a.flightTimeMin > b.flightTimeMin ||
           a.computePowerW > b.computePowerW ||
           a.totalWeightG < b.totalWeightG;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<DesignResult> &points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!points[i].feasible)
            continue;
        bool dominated = false;
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (j != i && dominates(points[j], points[i])) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

} // namespace dronedse::engine
