#include "engine/thread_pool.hh"

#include <algorithm>
#include <chrono>

#include "obs/tracer.hh"
#include "util/logging.hh"

namespace dronedse::engine {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

ThreadPool::ThreadPool(int threads)
{
    if (threads < 0)
        fatal("ThreadPool: thread count must be >= 0");
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : static_cast<int>(hw);
    }

    queues_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<WorkQueue>());
    stats_.resize(static_cast<std::size_t>(threads));

    // Worker 0 is the calling thread; spawn the rest.
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int i = 1; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        util::MutexLock lock(jobMutex_);
        shutdown_ = true;
    }
    jobReady_.notifyAll();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::parallelFor(std::size_t count, std::size_t chunk_size,
                        const std::function<void(std::size_t, int)> &body)
{
    parallelForChunks(count, chunk_size,
                      [&body](std::size_t begin, std::size_t end,
                              int worker) {
                          for (std::size_t i = begin; i < end; ++i)
                              body(i, worker);
                      });
}

void
ThreadPool::parallelForChunks(
    std::size_t count, std::size_t chunk_size,
    const std::function<void(std::size_t, std::size_t, int)> &body)
{
    const auto n_workers = queues_.size();
    for (auto &stat : stats_)
        stat = WorkerStats{};
    if (count == 0)
        return;

    if (chunk_size == 0) {
        // ~4 chunks per worker keeps the steal queues busy without
        // drowning the run in locking.
        chunk_size = std::max<std::size_t>(1, count / (n_workers * 4));
    }

    // Deal chunks round-robin so every worker starts with a share of
    // the grid; stealing rebalances whatever the deal got wrong.
    std::size_t next_queue = 0;
    for (std::size_t begin = 0; begin < count; begin += chunk_size) {
        const std::size_t end = std::min(count, begin + chunk_size);
        auto &queue = *queues_[next_queue];
        util::MutexLock lock(queue.mutex);
        queue.chunks.push_back({begin, end});
        next_queue = (next_queue + 1) % n_workers;
    }

    {
        util::MutexLock lock(jobMutex_);
        body_ = &body;
        activeWorkers_ = static_cast<int>(n_workers);
        ++generation_;
    }
    jobReady_.notifyAll();

    runWorker(0, body);

    {
        util::MutexLock lock(jobMutex_);
        if (--activeWorkers_ == 0)
            jobDone_.notifyAll();
        while (activeWorkers_ != 0)
            jobDone_.wait(jobMutex_);
        body_ = nullptr;
    }
}

void
ThreadPool::workerLoop(int worker)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const Body *body = nullptr;
        {
            util::MutexLock lock(jobMutex_);
            while (!shutdown_ && generation_ == seen_generation)
                jobReady_.wait(jobMutex_);
            if (shutdown_)
                return;
            seen_generation = generation_;
            // Snapshot the published body while the mutex is held —
            // the pointer stays valid until parallelFor observes
            // activeWorkers_ == 0, which cannot happen before this
            // worker's runWorker returns.
            body = body_;
        }
        runWorker(worker, *body);
        {
            util::MutexLock lock(jobMutex_);
            if (--activeWorkers_ == 0)
                jobDone_.notifyAll();
        }
    }
}

void
ThreadPool::runWorker(int worker, const Body &body)
{
    auto &stat = stats_[static_cast<std::size_t>(worker)];
    Chunk chunk;
    while (popLocal(worker, chunk) || steal(worker, chunk)) {
        const auto start = std::chrono::steady_clock::now();
        {
            obs::ScopedSpan span("engine.chunk", "engine");
            body(chunk.begin, chunk.end, worker);
        }
        stat.busySeconds += secondsSince(start);
        stat.itemsProcessed += chunk.end - chunk.begin;
    }
}

bool
ThreadPool::popLocal(int worker, Chunk &out)
{
    auto &queue = *queues_[static_cast<std::size_t>(worker)];
    util::MutexLock lock(queue.mutex);
    if (queue.chunks.empty())
        return false;
    out = queue.chunks.front();
    queue.chunks.pop_front();
    return true;
}

bool
ThreadPool::steal(int worker, Chunk &out)
{
    const auto n = queues_.size();
    for (std::size_t offset = 1; offset < n; ++offset) {
        const std::size_t victim =
            (static_cast<std::size_t>(worker) + offset) % n;
        auto &queue = *queues_[victim];
        util::MutexLock lock(queue.mutex);
        if (queue.chunks.empty())
            continue;
        out = queue.chunks.back();
        queue.chunks.pop_back();
        stats_[static_cast<std::size_t>(worker)].chunksStolen += 1;
        obs::instant("engine.steal", "engine");
        return true;
    }
    return false;
}

} // namespace dronedse::engine
