/**
 * @file
 * Sharded, thread-safe memo cache for `solveDesign`.
 *
 * The Equation 1-2 weight-closure fixed point dominates every sweep
 * (`bench/kernels_micro`), and the figure generators re-solve the
 * same series repeatedly — Figure 10 alone resolves each battery
 * family once per weight bucket.  The cache keys on a *quantized*
 * `DesignInputs` (every dimensioned field rounded to a fixed 1e-6
 * grid in its own unit) so bitwise-jittery but physically identical
 * inputs hit, while any two grid points of a real sweep — whose axes
 * step far coarser than the quantum — can never alias.
 *
 * Sharding: the key hash picks one of `kShards` independently locked
 * maps, so concurrent workers rarely contend.  Each shard evicts its
 * oldest entry (FIFO) at capacity.  Hit/miss/eviction counters live
 * per shard under the shard mutex; `counters()` locks every shard at
 * once, so the triple it returns is one consistent snapshot — a hit
 * recorded concurrently can never appear without the insert that
 * preceded it (no torn counter triples).
 */

#ifndef DRONEDSE_ENGINE_MEMO_CACHE_HH
#define DRONEDSE_ENGINE_MEMO_CACHE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>

#include "dse/design_point.hh"
#include "util/thread_annotations.hh"

namespace dronedse::engine {

/**
 * A `DesignInputs` rounded onto the cache's quantization grid.
 * Dimensioned fields are stored as integer multiples of 1e-6 of
 * their own unit (micro-grams, micro-mAh, ...), enums as integers,
 * and the board name verbatim (two boards with equal physics but
 * different names must not share a cached result echo).
 */
struct DesignKey
{
    std::int64_t wheelbaseUm = 0;
    std::int64_t propDiameterUin = 0;
    std::int64_t capacityUmah = 0;
    std::int64_t twrMicro = 0;
    std::int64_t boardWeightUg = 0;
    std::int64_t boardPowerUw = 0;
    std::int64_t sensorWeightUg = 0;
    std::int64_t sensorPowerUw = 0;
    std::int64_t payloadUg = 0;
    int cells = 0;
    int escClass = 0;
    int boardClass = 0;
    int activity = 0;
    std::string boardName;
    /**
     * Hash of the fields above, computed once by `quantizeInputs`.
     * Every map probe, shard pick, and batch-duplicate check reuses
     * it instead of re-hashing the key (the cold path hashes each
     * key exactly once per batch).  Not part of the key's identity.
     */
    std::size_t hash = 0;

    bool operator==(const DesignKey &other) const
    {
        return wheelbaseUm == other.wheelbaseUm &&
               propDiameterUin == other.propDiameterUin &&
               capacityUmah == other.capacityUmah &&
               twrMicro == other.twrMicro &&
               boardWeightUg == other.boardWeightUg &&
               boardPowerUw == other.boardPowerUw &&
               sensorWeightUg == other.sensorWeightUg &&
               sensorPowerUw == other.sensorPowerUw &&
               payloadUg == other.payloadUg && cells == other.cells &&
               escClass == other.escClass &&
               boardClass == other.boardClass &&
               activity == other.activity &&
               boardName == other.boardName;
    }
};

/** Quantize a full input set onto the cache grid (fills `hash`). */
DesignKey quantizeInputs(const DesignInputs &inputs);

/** Word-wise FNV-1a over the key fields, avalanche-finalized. */
std::size_t hashKey(const DesignKey &key);

struct DesignKeyHash
{
    std::size_t operator()(const DesignKey &key) const
    {
        return key.hash != 0 ? key.hash : hashKey(key);
    }
};

/** Monotonic hit/miss/eviction counters of one cache. */
struct CacheCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    double hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/**
 * The cache itself.  `lookup` and `insert` are safe from any number
 * of threads; a hit returns a copy of the exact `DesignResult` that
 * was inserted (including its echoed inputs).
 */
class MemoCache
{
  public:
    static constexpr std::size_t kShards = 16;

    /** Capacity is total entries across all shards. */
    explicit MemoCache(std::size_t capacity = 1 << 20);

    std::optional<DesignResult> lookup(const DesignKey &key);
    /**
     * Hit-path variant without the optional: on a hit, copies the
     * cached result straight into `out` (one copy, no intermediate)
     * and returns true; on a miss leaves `out` alone.  Counters
     * advance exactly as with the optional overload.
     */
    bool lookup(const DesignKey &key, DesignResult &out);
    void insert(const DesignKey &key, const DesignResult &result);

    /** Memoized `solveDesign`: lookup, else solve and insert. */
    DesignResult solve(const DesignInputs &inputs);

    /**
     * Memoized batch solve: look every input up, run the misses
     * through the SoA kernel (`solveDesignBatch`) in one pass, and
     * insert them in batch order.  `results[i]` is byte-identical to
     * what `solve(inputs[i])` would have produced, and the counters
     * advance by exactly `inputs.size()` hits-plus-misses: repeats
     * of a missed key within one batch are solved once and the
     * repeats recorded as the hits the sequential path would have
     * scored against the fresh insert.  (Only under a pathological
     * capacity — smaller than one batch's unique-key footprint in a
     * single shard — can the hit/miss split differ from a strictly
     * sequential replay, because the sequential path may re-miss a
     * key it evicted mid-batch.)
     */
    void solveBatch(std::span<const DesignInputs> inputs,
                    std::span<DesignResult> results);

    /**
     * One consistent snapshot (all shards locked together).  Locks
     * a variable set of mutexes in a loop — a pattern capability
     * analysis cannot express, hence the explicit opt-out on the
     * definition.
     */
    CacheCounters counters() const;
    std::size_t size() const;
    void clear();

  private:
    struct Shard
    {
        mutable util::Mutex mutex;
        std::unordered_map<DesignKey, DesignResult, DesignKeyHash>
            entries DDSE_GUARDED_BY(mutex);
        /** Insertion order for FIFO eviction. */
        std::deque<DesignKey> order DDSE_GUARDED_BY(mutex);
        /** Counters of this shard. */
        CacheCounters counters DDSE_GUARDED_BY(mutex);
    };

    Shard &shardFor(const DesignKey &key, std::size_t hash);

    /** Count the hit an intra-batch duplicate replays (no lookup). */
    void recordHit(const DesignKey &key);

    /** Per-shard entry cap; set once in the ctor, then read-only. */
    std::size_t shardCapacity_;
    std::array<Shard, kShards> shards_;
};

} // namespace dronedse::engine

#endif // DRONEDSE_ENGINE_MEMO_CACHE_HH
