/**
 * @file
 * Exact Pareto-frontier extraction over solved design points.
 *
 * The engine's query surface is the paper's central tradeoff: flight
 * time vs onboard compute capability vs all-up weight (Sections 3-4).
 * A design dominates another when it is at least as good on all
 * three objectives — more flight time, more compute power, less
 * weight — and strictly better on at least one.  The frontier is the
 * set of non-dominated feasible points, exact by pairwise test (the
 * grids here are 1e2-1e5 points; O(n^2) with early exit is far below
 * the solve cost).
 */

#ifndef DRONEDSE_ENGINE_PARETO_HH
#define DRONEDSE_ENGINE_PARETO_HH

#include <cstddef>
#include <vector>

#include "dse/design_point.hh"

namespace dronedse::engine {

/**
 * True when `a` Pareto-dominates `b` on (flight time up, compute
 * power up, all-up weight down).  Equal points do not dominate each
 * other, so duplicates all stay on the frontier.
 */
bool dominates(const DesignResult &a, const DesignResult &b);

/**
 * Indices of the non-dominated feasible points, in input order.
 * Infeasible points are never on the frontier and never dominate.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<DesignResult> &points);

} // namespace dronedse::engine

#endif // DRONEDSE_ENGINE_PARETO_HH
