#include "engine/engine.hh"

#include <chrono>
#include <span>

#include "components/battery.hh"
#include "engine/pareto.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace dronedse::engine {

std::vector<DesignResult>
SweepResult::feasibleSeries() const
{
    std::vector<DesignResult> out;
    out.reserve(feasible.size());
    for (std::size_t i : feasible)
        out.push_back(points[i]);
    return out;
}

SweepEngine::SweepEngine(EngineOptions options)
    : options_(options), pool_(options.threads),
      cache_(options.cacheCapacity)
{
}

SweepResult
SweepEngine::run(const SweepSpec &spec)
{
    // Serve workers call run() from many threads; batches execute
    // one at a time while the shared cache carries overlap between
    // them.  bestConfiguration() calls run() from outside the lock,
    // so the guard lives here and only here.
    util::MutexLock run_lock(runMutex_);
    obs::ScopedSpan sweep_span("engine.sweep", "engine");
    const auto start = std::chrono::steady_clock::now();
    const CacheCounters before = cache_.counters();

    const std::vector<DesignInputs> grid = expandGrid(spec);

    SweepResult result;
    result.points.resize(grid.size());
    // Each worker writes only the slots of the range it was handed,
    // so the reduction is order-independent by construction.  The
    // batch path hands each chunk to the memo cache whole: misses
    // ride the SoA kernel together instead of one fixed-point solve
    // per point.  Chunk boundaries move with the thread count, but
    // the kernel is blocking-invariant (solve(N) == any partition of
    // it, per the batch property tests), so the determinism contract
    // is unchanged.
    if (options_.batchSolve) {
        const std::span<const DesignInputs> grid_span(grid);
        const std::span<DesignResult> points_span(result.points);
        pool_.parallelForChunks(
            grid.size(), options_.chunkSize,
            [&](std::size_t begin, std::size_t end, int) {
                cache_.solveBatch(
                    grid_span.subspan(begin, end - begin),
                    points_span.subspan(begin, end - begin));
            });
    } else {
        pool_.parallelFor(grid.size(), options_.chunkSize,
                          [&](std::size_t i, int) {
                              result.points[i] = cache_.solve(grid[i]);
                          });
    }

    for (std::size_t i = 0; i < result.points.size(); ++i) {
        if (result.points[i].feasible)
            result.feasible.push_back(i);
    }
    result.frontier = paretoFrontier(result.points);

    const CacheCounters after = cache_.counters();
    SweepStats &stats = result.stats;
    stats.gridPoints = grid.size();
    stats.feasiblePoints = result.feasible.size();
    stats.frontierPoints = result.frontier.size();
    stats.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    stats.pointsPerSecond =
        stats.wallSeconds > 0.0
            ? static_cast<double>(grid.size()) / stats.wallSeconds
            : 0.0;
    stats.threads = pool_.threadCount();
    stats.cache.hits = after.hits - before.hits;
    stats.cache.misses = after.misses - before.misses;
    stats.cache.evictions = after.evictions - before.evictions;
    stats.perThread = pool_.lastRunStats();
    lastStats_ = stats;

    // The per-sweep counters are rebased onto the obs registry: the
    // bespoke SweepStats struct stays as the per-run view (its JSON
    // shape is pinned by DESIGN.md §9), while the registry is the
    // process-wide aggregation every sweep accumulates into.
    obs::MetricsRegistry &registry = obs::metrics();
    registry.counter("engine.sweeps").add(1);
    registry.counter("engine.grid_points").add(stats.gridPoints);
    registry.counter("engine.feasible_points")
        .add(stats.feasiblePoints);
    registry.counter("engine.frontier_points")
        .add(stats.frontierPoints);
    registry.counter("engine.cache.hits").add(stats.cache.hits);
    registry.counter("engine.cache.misses").add(stats.cache.misses);
    registry.counter("engine.cache.evictions")
        .add(stats.cache.evictions);
    if (options_.batchSolve)
        registry.counter("engine.batch.points").add(stats.gridPoints);
    registry.gauge("engine.sweep.points_per_second")
        .set(stats.pointsPerSecond);
    registry
        .histogram("engine.sweep.wall_seconds",
                   {0.001, 0.01, 0.1, 1.0, 10.0, 100.0})
        .record(stats.wallSeconds);
    return result;
}

DesignResult
SweepEngine::solve(const DesignInputs &inputs)
{
    return cache_.solve(inputs);
}

std::vector<DesignResult>
SweepEngine::solvePoints(std::span<const DesignInputs> points)
{
    // Same batching discipline as run(): one point list at a time
    // per engine, workers write only their own slots, and the batch
    // kernel is blocking-invariant — so the output is element-wise
    // identical to a serial solve loop at any thread count.
    util::MutexLock run_lock(runMutex_);
    obs::ScopedSpan span("engine.solve_points", "engine");
    std::vector<DesignResult> results(points.size());
    if (options_.batchSolve) {
        const std::span<DesignResult> results_span(results);
        pool_.parallelForChunks(
            points.size(), options_.chunkSize,
            [&](std::size_t begin, std::size_t end, int) {
                cache_.solveBatch(
                    points.subspan(begin, end - begin),
                    results_span.subspan(begin, end - begin));
            });
    } else {
        pool_.parallelFor(points.size(), options_.chunkSize,
                          [&](std::size_t i, int) {
                              results[i] = cache_.solve(points[i]);
                          });
    }
    obs::metrics().counter("engine.point_batches").add(1);
    obs::metrics().counter("engine.grid_points").add(points.size());
    return results;
}

std::size_t
bestFeasibleIndex(std::span<const DesignResult> points,
                  const SizeClassSpec *practical)
{
    std::size_t best = points.size();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const DesignResult &res = points[i];
        if (!res.feasible)
            continue;
        if (practical && !withinPracticalLimits(res, *practical))
            continue;
        if (best == points.size() ||
            res.flightTimeMin > points[best].flightTimeMin)
            best = i;
    }
    return best;
}

DesignResult
SweepEngine::bestConfiguration(const SizeClassSpec &spec,
                               const ComputeBoardRecord &compute,
                               Quantity<MilliampHours> step, double twr)
{
    std::vector<int> cells;
    for (int c = kMinCells; c <= kMaxCells; ++c)
        cells.push_back(c);
    // The batched scan: expand the class grid once, solve it as one
    // point batch (no feasible/frontier bookkeeping — the Pareto
    // pass run() would do is O(n^2) pure overhead here), and take
    // the max-flight-time index.  Cells ascending with capacity
    // innermost is exactly the serial search's order, so "strictly
    // greater flight time wins" breaks ties identically.
    const std::vector<DesignInputs> grid = expandGrid(classSweepSpec(
        spec, std::move(cells), step, compute,
        FlightActivity::Hovering, twr));
    const std::vector<DesignResult> points = solvePoints(grid);
    const std::size_t best = bestFeasibleIndex(points, &spec);
    if (best == points.size())
        fatal("SweepEngine::bestConfiguration: no feasible design in "
              "class sweep");
    return points[best];
}

SweepEngine &
sharedEngine()
{
    // Single-threaded: the shared instance exists for its memo cache
    // (single solves, designer reports); parallel sweep drivers own
    // their engine and pick a thread count explicitly.
    static SweepEngine engine{EngineOptions{.threads = 1}};
    return engine;
}

} // namespace dronedse::engine
