#include "engine/engine.hh"

#include <chrono>
#include <span>

#include "components/battery.hh"
#include "engine/pareto.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace dronedse::engine {

std::vector<DesignResult>
SweepResult::feasibleSeries() const
{
    std::vector<DesignResult> out;
    out.reserve(feasible.size());
    for (std::size_t i : feasible)
        out.push_back(points[i]);
    return out;
}

SweepEngine::SweepEngine(EngineOptions options)
    : options_(options), pool_(options.threads),
      cache_(options.cacheCapacity)
{
}

SweepResult
SweepEngine::run(const SweepSpec &spec)
{
    // Serve workers call run() from many threads; batches execute
    // one at a time while the shared cache carries overlap between
    // them.  bestConfiguration() calls run() from outside the lock,
    // so the guard lives here and only here.
    util::MutexLock run_lock(runMutex_);
    obs::ScopedSpan sweep_span("engine.sweep", "engine");
    const auto start = std::chrono::steady_clock::now();
    const CacheCounters before = cache_.counters();

    const std::vector<DesignInputs> grid = expandGrid(spec);

    SweepResult result;
    result.points.resize(grid.size());
    // Each worker writes only the slots of the range it was handed,
    // so the reduction is order-independent by construction.  The
    // batch path hands each chunk to the memo cache whole: misses
    // ride the SoA kernel together instead of one fixed-point solve
    // per point.  Chunk boundaries move with the thread count, but
    // the kernel is blocking-invariant (solve(N) == any partition of
    // it, per the batch property tests), so the determinism contract
    // is unchanged.
    if (options_.batchSolve) {
        const std::span<const DesignInputs> grid_span(grid);
        const std::span<DesignResult> points_span(result.points);
        pool_.parallelForChunks(
            grid.size(), options_.chunkSize,
            [&](std::size_t begin, std::size_t end, int) {
                cache_.solveBatch(
                    grid_span.subspan(begin, end - begin),
                    points_span.subspan(begin, end - begin));
            });
    } else {
        pool_.parallelFor(grid.size(), options_.chunkSize,
                          [&](std::size_t i, int) {
                              result.points[i] = cache_.solve(grid[i]);
                          });
    }

    for (std::size_t i = 0; i < result.points.size(); ++i) {
        if (result.points[i].feasible)
            result.feasible.push_back(i);
    }
    result.frontier = paretoFrontier(result.points);

    const CacheCounters after = cache_.counters();
    SweepStats &stats = result.stats;
    stats.gridPoints = grid.size();
    stats.feasiblePoints = result.feasible.size();
    stats.frontierPoints = result.frontier.size();
    stats.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    stats.pointsPerSecond =
        stats.wallSeconds > 0.0
            ? static_cast<double>(grid.size()) / stats.wallSeconds
            : 0.0;
    stats.threads = pool_.threadCount();
    stats.cache.hits = after.hits - before.hits;
    stats.cache.misses = after.misses - before.misses;
    stats.cache.evictions = after.evictions - before.evictions;
    stats.perThread = pool_.lastRunStats();
    lastStats_ = stats;

    // The per-sweep counters are rebased onto the obs registry: the
    // bespoke SweepStats struct stays as the per-run view (its JSON
    // shape is pinned by DESIGN.md §9), while the registry is the
    // process-wide aggregation every sweep accumulates into.
    obs::MetricsRegistry &registry = obs::metrics();
    registry.counter("engine.sweeps").add(1);
    registry.counter("engine.grid_points").add(stats.gridPoints);
    registry.counter("engine.feasible_points")
        .add(stats.feasiblePoints);
    registry.counter("engine.frontier_points")
        .add(stats.frontierPoints);
    registry.counter("engine.cache.hits").add(stats.cache.hits);
    registry.counter("engine.cache.misses").add(stats.cache.misses);
    registry.counter("engine.cache.evictions")
        .add(stats.cache.evictions);
    if (options_.batchSolve)
        registry.counter("engine.batch.points").add(stats.gridPoints);
    registry.gauge("engine.sweep.points_per_second")
        .set(stats.pointsPerSecond);
    registry
        .histogram("engine.sweep.wall_seconds",
                   {0.001, 0.01, 0.1, 1.0, 10.0, 100.0})
        .record(stats.wallSeconds);
    return result;
}

DesignResult
SweepEngine::solve(const DesignInputs &inputs)
{
    return cache_.solve(inputs);
}

DesignResult
SweepEngine::bestConfiguration(const SizeClassSpec &spec,
                               const ComputeBoardRecord &compute,
                               Quantity<MilliampHours> step, double twr)
{
    std::vector<int> cells;
    for (int c = kMinCells; c <= kMaxCells; ++c)
        cells.push_back(c);
    const SweepResult swept = run(classSweepSpec(
        spec, cells, step, compute, FlightActivity::Hovering, twr));

    // Same scan order as the serial search: cells ascending with
    // capacity innermost is exactly the grid order, so "strictly
    // greater flight time wins" breaks ties identically.
    DesignResult best;
    for (std::size_t i : swept.feasible) {
        const DesignResult &res = swept.points[i];
        if (!withinPracticalLimits(res, spec))
            continue;
        if (!best.feasible || res.flightTimeMin > best.flightTimeMin)
            best = res;
    }
    if (!best.feasible)
        fatal("SweepEngine::bestConfiguration: no feasible design in "
              "class sweep");
    return best;
}

SweepEngine &
sharedEngine()
{
    // Single-threaded: the shared instance exists for its memo cache
    // (single solves, designer reports); parallel sweep drivers own
    // their engine and pick a thread count explicitly.
    static SweepEngine engine{EngineOptions{.threads = 1}};
    return engine;
}

} // namespace dronedse::engine
