/**
 * @file
 * Fleet-scale mission engine: N independent missions flown
 * concurrently, with per-scenario survival and flight-time ECDFs as
 * the output (DESIGN.md §16).
 *
 * Two fidelity tiers share one harness:
 *
 *  - `Batched` (default): a reduced-order closed-loop mission model
 *    stepped in SoA lane blocks of `kFleetLaneWidth` drones (the
 *    PR-8 batch-solver idiom), thousands of missions per second.
 *    Per drone, the model tracks path progress along the compiled
 *    `MissionSpec`, a scalar tracking-error process driven by wind
 *    gusts / motor derating / estimation error, an EKF-coast
 *    estimation-error process, the deadline-miss accumulator, the
 *    Nominal→DegradedSlam→RateShed→LandSafe policy ladder (the same
 *    thresholds as `fault::PolicyConfig`), offload-link backoff,
 *    and a draining battery scaled by the scenario's payload and
 *    battery-age axes.
 *
 *  - `FullStack`: every drone flies the complete
 *    `fault::runResilienceMission` stack (EKF, cascaded inner loop,
 *    scheduler, offload link).  ~1000x slower; it exists so the
 *    harness — seed derivation, scenario plumbing, report
 *    aggregation — is provable against the single-mission path
 *    (tests/fleet/test_fleet_differential.cc).
 *
 * Determinism contract: drone `i` of a run draws every random
 * number from a stream seeded by `deriveDroneSeed(fleetSeed, i)`
 * and shares no mutable state with any other drone, so results are
 * byte-identical at any thread count, any lane-block partition, and
 * any drone processing order (tests/fleet/test_fleet_determinism.cc
 * pins this across --jobs 1/2/8 and seeded order permutations).
 */

#ifndef DRONEDSE_FLEET_FLEET_HH
#define DRONEDSE_FLEET_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/mission.hh"
#include "fault/policy.hh"
#include "fleet/mission_spec.hh"
#include "fleet/scenario.hh"
#include "util/ecdf.hh"

namespace dronedse::fleet {

/** Drones per SoA lane block in the batched stepper. */
inline constexpr std::size_t kFleetLaneWidth = 8;

/** Which mission model the fleet flies. */
enum class FleetFidelity
{
    /** Reduced-order SoA lane-block stepper (the fast path). */
    Batched = 0,
    /** Full `runResilienceMission` stack per drone (the oracle). */
    FullStack,
};

/** One fleet run: a mission, a scenario set, a drone population. */
struct FleetSpec
{
    /** Flown by every drone (Batched fidelity only; FullStack flies
     *  the resilience harness's built-in survey mission). */
    MissionSpec mission;
    /** One drone population is flown per scenario. */
    std::vector<ComposedScenario> scenarios;
    /** Drones (= missions) per scenario. */
    std::size_t dronesPerScenario = 256;
    /** Root seed; per-drone streams derive from (this, index). */
    std::uint64_t fleetSeed = 17;
    /** Run the degradation policy ladder. */
    bool policyEnabled = true;
    /** Stepper tick (s). */
    double tickS = 0.1;
    /** Hard mission cutoff (s). */
    double maxDurationS = 300.0;
    FleetFidelity fidelity = FleetFidelity::Batched;
    /**
     * FullStack only: harness configuration template.  `seed` and
     * `policyEnabled` are overwritten per drone / from this spec.
     */
    fault::ResilienceConfig fullStack{};
};

/** Compact per-mission outcome (both fidelities produce this). */
struct DroneOutcome
{
    fault::OutcomeTier tier = fault::OutcomeTier::Completed;
    bool crashed = false;
    bool landed = false;
    bool missionComplete = false;
    std::uint32_t waypointsReached = 0;
    double flightTimeS = 0.0;
    double energyWh = 0.0;
    double maxTrackErrM = 0.0;
    double maxEstErrM = 0.0;
    fault::FlightMode worstMode = fault::FlightMode::Nominal;
};

/** One scenario's population results. */
struct ScenarioResult
{
    std::string name;
    /** Indexed by drone (logical order, independent of schedule). */
    std::vector<DroneOutcome> outcomes;
    /** FullStack fidelity only: the complete per-drone reports. */
    std::vector<fault::MissionReport> fullReports;

    /** Fraction of drones whose tier is not Crashed. */
    double survivalRate() const;
    /** Flight-time distribution over the population (s). */
    Ecdf flightTimeEcdf() const;
    /** Energy distribution over the population (Wh). */
    Ecdf energyEcdf() const;
    /** Count of drones at exactly `tier`. */
    std::size_t tierCount(fault::OutcomeTier tier) const;
};

/** A whole fleet run. */
struct FleetResult
{
    /** One entry per spec scenario, in spec order. */
    std::vector<ScenarioResult> scenarios;
    /** Total missions flown. */
    std::uint64_t missionsFlown = 0;
};

/**
 * Per-drone seed stream: SplitMix64 finalization over
 * (fleetSeed, droneIndex).  Public because the differential test
 * reproduces single missions from it.
 */
std::uint64_t deriveDroneSeed(std::uint64_t fleet_seed,
                              std::uint64_t drone_index);

/**
 * Fly the fleet, `jobs` workers at a time (0 = hardware
 * concurrency).  Results land in per-drone slots, so output is
 * byte-identical at any `jobs`.
 */
FleetResult runFleet(const FleetSpec &spec, int jobs = 1);

/**
 * Determinism-test entry point: fly the same fleet but process the
 * flattened (scenario, drone) index space in `order` (a permutation
 * of [0, scenarios*dronesPerScenario)).  The lane blocks then group
 * *different* drones than the identity order — any cross-lane
 * state leak changes the output.  Results are still written to
 * logical slots; a correct stepper is order-invariant.
 */
FleetResult runFleetPermuted(const FleetSpec &spec, int jobs,
                             const std::vector<std::size_t> &order);

/**
 * Per-scenario summary CSV: survival rate, tier counts, flight-time
 * quantiles, and P[flight time ≥ 60 s] per scenario, `%.17g`
 * formatted so equal results give byte-equal text.
 */
std::string fleetSummaryCsv(const FleetResult &result);

/**
 * Full ECDF CSV: one row per (scenario, metric, sample) with the
 * cumulative probability, metrics `flight_time_s` and `energy_wh`.
 */
std::string fleetEcdfCsv(const FleetResult &result);

} // namespace dronedse::fleet

#endif // DRONEDSE_FLEET_FLEET_HH
