/**
 * @file
 * Scenario composition for fleet studies: fault timelines crossed
 * with environment axes.
 *
 * The paper's conclusions are statistical claims over scenario
 * distributions, and The Role of Compute in Autonomous Aerial
 * Vehicles (PAPERS.md 1906.10513) motivates sweeping environment
 * axes — wind, payload, battery health — at scale.  A
 * `ComposedScenario` bundles one fault timeline (possibly itself a
 * `fault::composeScenarios` product of catalog entries) with one
 * point on those axes; the fleet engine flies a population of
 * drones through each.
 *
 * `composedCatalog()` builds the cross product of the 11-scenario
 * fault catalog with itself through the typed composition API:
 * pairs whose events overlap on one subsystem are *rejected by
 * construction* (fault.hh `ComposeError`), so every composed
 * timeline in the result has well-defined semantics.  The counts of
 * accepted and rejected pairs are reported so studies can see what
 * the overlap rule filtered.
 */

#ifndef DRONEDSE_FLEET_SCENARIO_HH
#define DRONEDSE_FLEET_SCENARIO_HH

#include <cstddef>
#include <string>
#include <vector>

#include "fault/fault.hh"

namespace dronedse::fleet {

/** Environment operating point for one scenario. */
struct EnvAxes
{
    /** Mean horizontal wind (m/s); gusts scale with it. */
    double windMps = 1.5;
    /** Payload carried beyond the base airframe (g). */
    double payloadG = 0.0;
    /**
     * Battery health: remaining capacity fraction in (0, 1].
     * 1.0 = fresh pack, 0.7 = aged pack at 70 % capacity.
     */
    double batteryAge = 1.0;

    bool operator==(const EnvAxes &) const = default;

    /** "w<wind>_p<payload>_a<age>" axis tag for scenario names. */
    std::string tag() const;
};

/** One fault timeline at one environment operating point. */
struct ComposedScenario
{
    /** Unique within a fleet run; keys the per-scenario outputs. */
    std::string name;
    fault::FaultScenario faults;
    EnvAxes env;
};

/** Result of cross-producting the fault catalog. */
struct ComposedCatalog
{
    std::vector<ComposedScenario> scenarios;
    /** Ordered pairs the overlap rule rejected. */
    std::size_t rejectedPairs = 0;
    /** The typed rejections, for reporting. */
    std::vector<fault::ComposeError> rejections;
};

/**
 * All single catalog scenarios plus every ordered pair (a, b),
 * a != b, that composes cleanly under the subsystem-overlap rule.
 * Deterministic: catalog order × catalog order.
 */
ComposedCatalog composedCatalog();

/**
 * Cross `scenarios` with every combination of the axis values:
 * result order is scenario-major, then wind, payload, battery age.
 * Each output is named `<scenario>@<axis tag>`.  Empty axis vectors
 * are invalid (pass {EnvAxes{}.windMps} etc. for "don't sweep").
 */
std::vector<ComposedScenario>
crossWithAxes(const std::vector<ComposedScenario> &scenarios,
              const std::vector<double> &winds_mps,
              const std::vector<double> &payloads_g,
              const std::vector<double> &battery_ages);

/** Wrap bare fault scenarios at the nominal operating point. */
std::vector<ComposedScenario>
wrapScenarios(const std::vector<fault::FaultScenario> &scenarios);

} // namespace dronedse::fleet

#endif // DRONEDSE_FLEET_SCENARIO_HH
