#include "fleet/mission_spec.hh"

#include "util/logging.hh"

namespace dronedse::fleet {

namespace {

MissionStage
takeoff(double altitude_m, double speed_mps = 1.0)
{
    MissionStage s;
    s.kind = StageKind::Takeoff;
    s.altitudeM = altitude_m;
    s.speedMps = speed_mps;
    return s;
}

MissionStage
navigate(double distance_m, double speed_mps)
{
    MissionStage s;
    s.kind = StageKind::Navigate;
    s.distanceM = distance_m;
    s.speedMps = speed_mps;
    return s;
}

MissionStage
search(int legs, double leg_length_m, double speed_mps)
{
    MissionStage s;
    s.kind = StageKind::Search;
    s.legs = legs;
    s.legLengthM = leg_length_m;
    s.speedMps = speed_mps;
    return s;
}

MissionStage
homeward(double distance_m, double speed_mps,
         double descent_mps = 0.5)
{
    MissionStage s;
    s.kind = StageKind::Return;
    s.distanceM = distance_m;
    s.speedMps = speed_mps;
    s.descentMps = descent_mps;
    return s;
}

std::vector<MissionSpec>
buildCatalog()
{
    std::vector<MissionSpec> list;

    list.push_back({"survey",
                    "takeoff, short transit, 4-leg survey square, "
                    "return home and land",
                    {takeoff(3.0), navigate(20.0, 3.0),
                     search(4, 12.0, 2.0), homeward(25.0, 3.0)}});

    list.push_back({"delivery",
                    "takeoff, long fast transit out and back: the "
                    "energy-bound leg mix",
                    {takeoff(5.0, 1.5), navigate(120.0, 6.0),
                     homeward(120.0, 6.0)}});

    list.push_back({"search_rescue",
                    "takeoff, transit, 8-leg wide-area search at low "
                    "speed: the perception-bound leg mix",
                    {takeoff(4.0), navigate(40.0, 4.0),
                     search(8, 18.0, 1.5), homeward(45.0, 4.0)}});

    list.push_back({"perimeter",
                    "takeoff, four navigate legs around a site "
                    "perimeter, return",
                    {takeoff(3.0), navigate(30.0, 3.5),
                     navigate(30.0, 3.5), navigate(30.0, 3.5),
                     navigate(30.0, 3.5), homeward(8.0, 2.0)}});

    return list;
}

} // namespace

const char *
stageKindName(StageKind kind)
{
    switch (kind) {
    case StageKind::Takeoff:
        return "takeoff";
    case StageKind::Navigate:
        return "navigate";
    case StageKind::Search:
        return "search";
    case StageKind::Return:
        return "return";
    }
    panic("stageKindName: invalid stage kind");
}

CompiledMission
compileMission(const MissionSpec &spec)
{
    if (spec.stages.empty())
        fatal("compileMission: mission '" + spec.name +
              "' has no stages");

    CompiledMission out;
    auto add_leg = [&](StageKind stage, double length_m,
                       double speed_mps, double climb_m) {
        if (length_m <= 0.0 || speed_mps <= 0.0)
            fatal("compileMission: mission '" + spec.name +
                  "' has a non-positive leg length or speed");
        CompiledLeg leg;
        leg.stage = stage;
        leg.lengthM = length_m;
        leg.speedMps = speed_mps;
        leg.climbM = climb_m;
        out.legs.push_back(leg);
        out.totalLengthM += length_m;
        out.cumulativeM.push_back(out.totalLengthM);
    };

    double altitude_m = 0.0;
    for (const MissionStage &stage : spec.stages) {
        switch (stage.kind) {
        case StageKind::Takeoff:
            if (stage.altitudeM <= altitude_m)
                fatal("compileMission: mission '" + spec.name +
                      "' takeoff must climb above current altitude");
            add_leg(StageKind::Takeoff, stage.altitudeM - altitude_m,
                    stage.speedMps, stage.altitudeM - altitude_m);
            altitude_m = stage.altitudeM;
            break;
        case StageKind::Navigate:
            add_leg(StageKind::Navigate, stage.distanceM,
                    stage.speedMps, 0.0);
            break;
        case StageKind::Search:
            if (stage.legs <= 0)
                fatal("compileMission: mission '" + spec.name +
                      "' search stage needs at least one leg");
            for (int i = 0; i < stage.legs; ++i)
                add_leg(StageKind::Search, stage.legLengthM,
                        stage.speedMps, 0.0);
            break;
        case StageKind::Return:
            add_leg(StageKind::Return, stage.distanceM,
                    stage.speedMps, 0.0);
            if (altitude_m > 0.0) {
                add_leg(StageKind::Return, altitude_m,
                        stage.descentMps, -altitude_m);
                altitude_m = 0.0;
            }
            break;
        }
    }
    return out;
}

const std::vector<MissionSpec> &
missionCatalog()
{
    static const std::vector<MissionSpec> catalog = buildCatalog();
    return catalog;
}

const MissionSpec &
findMission(const std::string &name)
{
    for (const auto &m : missionCatalog()) {
        if (m.name == name)
            return m;
    }
    fatal("findMission: no mission named '" + name + "'");
}

} // namespace dronedse::fleet
