#include "fleet/fleet.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "engine/thread_pool.hh"
#include "fault/injector.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace dronedse::fleet {

namespace {

// ---- Reduced-order mission model constants. ---------------------
//
// Calibrated against the 450 mm reference design the full-stack
// harness flies: a ~1071 g airframe on a 3S 3000 mAh pack hovering
// near 180 W at ~45 % throttle.  The fault/policy thresholds are
// *not* redeclared here — they come from fault::PolicyConfig so the
// two fidelity tiers degrade by the same rules.

/** 3S 3000 mAh pack at 11.1 V nominal (Wh). */
constexpr double kBasePackWh = 33.3;
/** Reference all-up weight (g); payload adds to this. */
constexpr double kBaseMassG = 1071.0;
/** Hover power of the reference airframe (W). */
constexpr double kHoverBaseW = 180.0;
/** Hover throttle fraction of the reference airframe. */
constexpr double kHoverThrottleBase = 0.45;
/** Board+radio power, SLAM offloaded (W). */
constexpr double kBoardOffloadW = 7.5;
/** Board power with SLAM fallen back onboard (W). */
constexpr double kBoardOnboardW = 12.0;

/** Estimation-error floor at unit sensor noise (m). */
constexpr double kEstFloorM = 0.25;
/** GPS-aided convergence time constant (s). */
constexpr double kEstTauS = 1.5;
/** Dead-reckoning drift rate at unit IMU noise (m/s). */
constexpr double kEstDriftMps = 0.35;
/** Random-walk scale of the estimate (m/sqrt(s)). */
constexpr double kEstWalk = 0.15;
/** Camera loss degrades visual aiding: floor multiplier. */
constexpr double kCameraLossFloorScale = 1.5;

/** Tracking-error damping (1/s): the closed loop pulls back. */
constexpr double kErrDampPerS = 0.8;
/** Wind-to-error forcing gain (m/s error growth per m/s wind). */
constexpr double kErrWindGain = 0.08;
/** Lost-actuation forcing gain (m/s per unit lost effectiveness). */
constexpr double kErrDerateGain = 3.0;
/** Estimation-error coupling gain (flying a wrong state). */
constexpr double kErrEstGain = 0.2;
/** Gust gustiness: std of the per-tick wind multiplier. */
constexpr double kGustStd = 0.5;

/** Outer-loop load multiplier when SLAM runs onboard. */
constexpr double kLoadOnboard = 2.5;
/** Load multiplier under RateShed (work shed). */
constexpr double kLoadShedFactor = 0.55;
/** Latency that doubles the effective offloaded load (ms). */
constexpr double kLoadLatencyMs = 200.0;
/** Load the scheduler absorbs without missing deadlines. */
constexpr double kLoadThreshold = 1.2;
/** Deadline misses accumulated per second per unit overload. */
constexpr double kMissGainPerS = 12.0;

/** Commanded-speed factor under RateShed. */
constexpr double kShedSpeedFactor = 0.7;
/** LandSafe descent rate (m/s), matching the autopilot hook. */
constexpr double kLandDescentMps = 0.5;
/** Sustained hover-thrust deficit that ends in a crash (s). */
constexpr double kThrustDeficitCrashS = 2.0;
/** Ground-speed loss per m/s of mean wind (m/s). */
constexpr double kSpeedWindPenalty = 0.15;
/** Thrust margin above which full commanded speed is available. */
constexpr double kFullSpeedMargin = 0.5;
/** Fraction of commanded speed always available while flyable. */
constexpr double kMinSpeedFraction = 0.2;
/** Translational drag power gain at 4 m/s reference speed. */
constexpr double kDragPowerGain = 0.08;
/** Extra hover power per m/s of wind (fraction). */
constexpr double kWindPowerGain = 0.03;
/** Tracking error past this is departed flight (m). */
constexpr double kFlyawayErrM = 25.0;
/** Per-drone manufacturing spread of hover power (fraction). */
constexpr double kPowerTrimStd = 0.05;
/** Per-drone spread of achievable speed (fraction). */
constexpr double kSpeedTrimStd = 0.03;

/** Immutable per-scenario context shared by its whole population. */
struct ScenarioCtx
{
    const ComposedScenario *scenario = nullptr;
    fault::FaultInjector injector;
    /** Pack capacity after the battery-age axis (Wh). */
    double capacityWh = 0.0;
    /** Hover power at this payload (W). */
    double hoverW = 0.0;
    /** Hover throttle fraction at this payload. */
    double hoverThrottle = 0.0;

    explicit ScenarioCtx(const ComposedScenario &s)
        : scenario(&s), injector(s.faults)
    {
        const double mass_ratio =
            (kBaseMassG + s.env.payloadG) / kBaseMassG;
        const double lift_factor = std::pow(mass_ratio, 1.5);
        capacityWh = kBasePackWh * s.env.batteryAge;
        hoverW = kHoverBaseW * lift_factor;
        hoverThrottle = kHoverThrottleBase * lift_factor;
    }
};

/**
 * SoA lane-block state (PR-8 idiom): one fixed-width block of
 * drones stepped in lockstep, lanes-innermost phase loops, per-lane
 * active masks.  Every array is per-lane; no state is shared
 * between lanes, which is what makes the stepper partition- and
 * order-invariant.
 */
struct LaneBlock
{
    static constexpr std::size_t W = kFleetLaneWidth;

    const ScenarioCtx *ctx[W] = {};
    DroneOutcome *out[W] = {};
    Rng rng[W];

    // Mission progress.
    std::size_t leg[W] = {};
    double legPosM[W] = {};
    double altM[W] = {};

    // Error processes.
    double errM[W] = {};
    double estErrM[W] = {};
    double maxErrM[W] = {};
    double maxEstErrM[W] = {};

    // Scheduler / link / policy.
    double missLevel[W] = {};
    double gpsDownSince[W] = {};
    bool linkUp[W] = {};
    double backoffS[W] = {};
    double nextRetryT[W] = {};
    std::uint8_t mode[W] = {};
    std::uint8_t worstMode[W] = {};
    double lastElevatedT[W] = {};

    // Energy and airworthiness.
    double energyWh[W] = {};
    double deficitS[W] = {};
    /** Per-drone trim factors (drawn once at init). */
    double powerTrim[W] = {};
    double speedTrim[W] = {};

    // Termination.
    bool active[W] = {};
    bool crashed[W] = {};
    bool landed[W] = {};
    bool complete[W] = {};
    double endT[W] = {};

    std::size_t lanes = 0;
};

using fault::FaultKind;
using fault::FlightMode;

/** One policy ladder shared by both fidelity tiers. */
const fault::PolicyConfig &
policyDefaults()
{
    static const fault::PolicyConfig config{};
    return config;
}

void
initLane(LaneBlock &block, std::size_t lane, const ScenarioCtx &ctx,
         DroneOutcome &out, std::uint64_t seed)
{
    block.ctx[lane] = &ctx;
    block.out[lane] = &out;
    block.rng[lane] = Rng(seed);
    block.leg[lane] = 0;
    block.legPosM[lane] = 0.0;
    block.altM[lane] = 0.0;
    block.errM[lane] = 0.0;
    block.estErrM[lane] = kEstFloorM;
    block.maxErrM[lane] = 0.0;
    block.maxEstErrM[lane] = kEstFloorM;
    block.missLevel[lane] = 0.0;
    block.gpsDownSince[lane] = -1.0;
    block.linkUp[lane] = true;
    block.backoffS[lane] = 0.0;
    block.nextRetryT[lane] = 0.0;
    block.mode[lane] = 0;
    block.worstMode[lane] = 0;
    block.lastElevatedT[lane] = 0.0;
    block.energyWh[lane] = 0.0;
    block.deficitS[lane] = 0.0;
    // Population spread: per-drone trim drawn from the lane stream
    // before any per-tick draws, so tick streams stay aligned.
    block.powerTrim[lane] =
        1.0 + kPowerTrimStd * block.rng[lane].gaussian();
    block.speedTrim[lane] =
        1.0 + kSpeedTrimStd * block.rng[lane].gaussian();
    block.active[lane] = true;
    block.crashed[lane] = false;
    block.landed[lane] = false;
    block.complete[lane] = false;
    block.endT[lane] = 0.0;
}

void
finishLane(LaneBlock &block, std::size_t lane, double end_t)
{
    block.active[lane] = false;
    block.endT[lane] = end_t;
}

/** Step every active lane of the block through one tick. */
void
stepBlockTick(LaneBlock &block, const CompiledMission &mission,
              const FleetSpec &spec, long k)
{
    const double dt = spec.tickS;
    const double t = static_cast<double>(k) * dt;
    const double t_next = static_cast<double>(k + 1) * dt;
    const fault::PolicyConfig &pc = policyDefaults();
    const double sqrt_dt = std::sqrt(dt);
    const double miss_decay =
        std::pow(0.5, dt / pc.missHalfLifeS);

    // Per-tick fault snapshot, per lane (SoA scratch).
    bool gps[LaneBlock::W];
    double noise[LaneBlock::W];
    double min_eff[LaneBlock::W];
    bool link_fault[LaneBlock::W];
    double latency_ms[LaneBlock::W];
    double cost_scale[LaneBlock::W];
    bool camera_out[LaneBlock::W];

    // --- Phase 1: inject this tick's faults. ---------------------
    for (std::size_t lane = 0; lane < block.lanes; ++lane) {
        if (!block.active[lane])
            continue;
        const fault::FaultInjector &inj = block.ctx[lane]->injector;
        gps[lane] = !inj.active(FaultKind::GpsDropout, t);
        noise[lane] =
            inj.magnitude(FaultKind::ImuNoiseSpike, t, 1.0);
        min_eff[lane] = inj.magnitude(FaultKind::MotorDerate, t, 1.0);
        link_fault[lane] = inj.active(FaultKind::OffloadLinkDown, t);
        latency_ms[lane] =
            inj.magnitude(FaultKind::OffloadLatencySpike, t, 0.0);
        cost_scale[lane] =
            inj.magnitude(FaultKind::ComputeContention, t, 1.0);
        camera_out[lane] =
            inj.active(FaultKind::CameraFrameLoss, t);
    }

    // --- Phase 2: link observation and backoff retries. ----------
    for (std::size_t lane = 0; lane < block.lanes; ++lane) {
        if (!block.active[lane])
            continue;
        if (block.linkUp[lane] && link_fault[lane]) {
            // Loss is noticed immediately (an RPC fails).
            block.linkUp[lane] = false;
            if (spec.policyEnabled) {
                block.backoffS[lane] = pc.backoffMinS;
                block.nextRetryT[lane] = t + pc.backoffMinS;
            }
        } else if (!block.linkUp[lane]) {
            if (!spec.policyEnabled) {
                // No policy: re-probe every tick.
                block.linkUp[lane] = !link_fault[lane];
            } else if (t >= block.nextRetryT[lane]) {
                if (!link_fault[lane]) {
                    block.linkUp[lane] = true;
                    block.backoffS[lane] = 0.0;
                } else {
                    block.backoffS[lane] = std::min(
                        block.backoffS[lane] * pc.backoffFactor,
                        pc.backoffMaxS);
                    block.nextRetryT[lane] =
                        t + block.backoffS[lane];
                }
            }
        }
    }

    // --- Phase 3: estimation-error process. ----------------------
    for (std::size_t lane = 0; lane < block.lanes; ++lane) {
        if (!block.active[lane])
            continue;
        double est = block.estErrM[lane];
        double floor = kEstFloorM * noise[lane];
        if (camera_out[lane])
            floor *= kCameraLossFloorScale;
        const double walk_draw = block.rng[lane].gaussian();
        if (gps[lane]) {
            block.gpsDownSince[lane] = -1.0;
            est += dt * (floor - est) / kEstTauS;
            est += std::fabs(walk_draw) * kEstWalk * sqrt_dt * 0.1;
        } else {
            if (block.gpsDownSince[lane] < 0.0)
                block.gpsDownSince[lane] = t;
            est += dt * kEstDriftMps * noise[lane];
            est += std::fabs(walk_draw) * kEstWalk * sqrt_dt *
                   noise[lane];
        }
        est = std::max(0.0, est);
        block.estErrM[lane] = est;
        block.maxEstErrM[lane] =
            std::max(block.maxEstErrM[lane], est);
    }

    // --- Phase 4: outer-loop load and deadline misses. -----------
    for (std::size_t lane = 0; lane < block.lanes; ++lane) {
        if (!block.active[lane])
            continue;
        const bool onboard = !block.linkUp[lane];
        const bool shed =
            block.mode[lane] >=
            static_cast<std::uint8_t>(FlightMode::RateShed);
        double load = cost_scale[lane];
        if (onboard)
            load *= kLoadOnboard;
        else
            load *= 1.0 + latency_ms[lane] / kLoadLatencyMs;
        if (shed)
            load *= kLoadShedFactor;
        block.missLevel[lane] =
            block.missLevel[lane] * miss_decay +
            std::max(0.0, load - kLoadThreshold) * kMissGainPerS *
                dt;
    }

    // --- Phase 5: policy ladder. ---------------------------------
    if (spec.policyEnabled) {
        for (std::size_t lane = 0; lane < block.lanes; ++lane) {
            if (!block.active[lane])
                continue;
            const ScenarioCtx &ctx = *block.ctx[lane];
            const double soc =
                1.0 - block.energyWh[lane] / ctx.capacityWh;
            const double gps_denial_s =
                block.gpsDownSince[lane] < 0.0
                    ? 0.0
                    : t - block.gpsDownSince[lane];

            auto demand = FlightMode::Nominal;
            if (!block.linkUp[lane] || !gps[lane])
                demand = FlightMode::DegradedSlam;
            if (block.missLevel[lane] > pc.missShedLevel ||
                block.estErrM[lane] > pc.estErrShedM)
                demand = FlightMode::RateShed;
            if (soc <= pc.socLandFraction ||
                min_eff[lane] < pc.motorEffLandFraction ||
                gps_denial_s >= pc.gpsDenialLandS ||
                block.estErrM[lane] > pc.estErrLandM)
                demand = FlightMode::LandSafe;

            const auto current =
                static_cast<FlightMode>(block.mode[lane]);
            if (demand >= current) {
                // Escalation is immediate; LandSafe is absorbing.
                block.mode[lane] =
                    static_cast<std::uint8_t>(demand);
                block.lastElevatedT[lane] = t;
            } else if (current != FlightMode::LandSafe &&
                       t - block.lastElevatedT[lane] >=
                           pc.recoveryHoldS) {
                // De-escalate only after a continuous clear hold.
                block.mode[lane] =
                    static_cast<std::uint8_t>(demand);
                block.lastElevatedT[lane] = t;
            }
            block.worstMode[lane] = std::max(block.worstMode[lane],
                                             block.mode[lane]);
        }
    }

    // --- Phase 6: motion, tracking error, termination. -----------
    for (std::size_t lane = 0; lane < block.lanes; ++lane) {
        if (!block.active[lane])
            continue;
        const ScenarioCtx &ctx = *block.ctx[lane];
        const double wind = ctx.scenario->env.windMps;
        const bool land_safe =
            block.mode[lane] ==
            static_cast<std::uint8_t>(FlightMode::LandSafe);
        const bool shed =
            block.mode[lane] >=
            static_cast<std::uint8_t>(FlightMode::RateShed);

        double speed = 0.0;
        if (land_safe) {
            // Descend in place; touchdown ends the mission.  The
            // reduced thrust demand of a descent is why a deep
            // derate that cannot hover can still land.
            block.altM[lane] -= kLandDescentMps * dt;
            if (block.altM[lane] <= 0.0) {
                block.landed[lane] = true;
                finishLane(block, lane, t_next);
            }
        } else {
            // Hover-thrust margin: below the hover throttle the
            // drone sheds altitude; sustained deficit is a crash.
            if (min_eff[lane] < ctx.hoverThrottle) {
                block.deficitS[lane] += dt;
                if (block.deficitS[lane] > kThrustDeficitCrashS) {
                    block.crashed[lane] = true;
                    finishLane(block, lane, t_next);
                }
            } else {
                block.deficitS[lane] =
                    std::max(0.0, block.deficitS[lane] - dt);
            }
        }
        if (!block.active[lane])
            continue;

        // Per-tick gust: one draw per lane per tick, always taken
        // so the stream stays aligned across mode branches.
        const double gust_draw = block.rng[lane].gaussian();
        const double gust = wind * (1.0 + kGustStd * gust_draw);

        if (!land_safe) {
            const CompiledLeg &leg = mission.legs[block.leg[lane]];
            // Speed costs thrust headroom; a mild derate barely
            // slows the drone, a near-hover-limit one crawls.
            const double margin = std::clamp(
                (min_eff[lane] - ctx.hoverThrottle) /
                    (1.0 - kHoverThrottleBase),
                0.0, 1.0);
            const double speed_scale =
                std::min(1.0, margin / kFullSpeedMargin);
            double cmd = leg.speedMps * block.speedTrim[lane];
            if (shed)
                cmd *= kShedSpeedFactor;
            speed = cmd * speed_scale - kSpeedWindPenalty * gust;
            if (margin > 0.0)
                speed = std::max(speed, kMinSpeedFraction * cmd);
            speed = std::max(speed, 0.0);

            // Advance along the compiled path, possibly across leg
            // boundaries; finishing the last leg is touchdown.
            double ds = speed * dt;
            while (ds > 0.0 && block.active[lane]) {
                const CompiledLeg &cur =
                    mission.legs[block.leg[lane]];
                const double remaining =
                    cur.lengthM - block.legPosM[lane];
                const double step = std::min(ds, remaining);
                block.legPosM[lane] += step;
                block.altM[lane] +=
                    step * cur.climbM / cur.lengthM;
                ds -= step;
                if (block.legPosM[lane] >= cur.lengthM) {
                    block.legPosM[lane] = 0.0;
                    ++block.leg[lane];
                    if (block.leg[lane] >= mission.legs.size()) {
                        block.complete[lane] = true;
                        block.landed[lane] = true;
                        finishLane(block, lane, t_next);
                    }
                }
            }
        }

        // Tracking-error process (skipped as a crash criterion
        // during LandSafe, matching the harness's stale-waypoint
        // rule, but still integrated for the report fields).
        double err = block.errM[lane];
        const double est_excess =
            std::max(0.0, block.estErrM[lane] - 1.0);
        err += dt * (kErrWindGain * gust +
                     kErrDerateGain * (1.0 - min_eff[lane]) +
                     kErrEstGain * est_excess -
                     kErrDampPerS * err);
        err = std::max(0.0, err);
        block.errM[lane] = err;
        block.maxErrM[lane] = std::max(block.maxErrM[lane], err);
        if (block.active[lane] && !land_safe &&
            err > kFlyawayErrM) {
            block.crashed[lane] = true;
            finishLane(block, lane, t_next);
        }

        // Battery drain; depletion ends the mission where it is.
        const double prop_w =
            ctx.hoverW * block.powerTrim[lane] *
            (1.0 + kDragPowerGain * (speed * speed) / 16.0 +
             kWindPowerGain * wind);
        const double board_w =
            block.linkUp[lane] ? kBoardOffloadW : kBoardOnboardW;
        block.energyWh[lane] +=
            (prop_w + board_w) * dt / 3600.0;
        if (block.active[lane] &&
            block.energyWh[lane] >= ctx.capacityWh)
            finishLane(block, lane, t_next);
    }
}

/** Fly one lane block to completion (all lanes terminated). */
void
runBlock(LaneBlock &block, const CompiledMission &mission,
         const FleetSpec &spec)
{
    const auto max_ticks = static_cast<long>(
        std::lround(spec.maxDurationS / spec.tickS));
    for (long k = 0; k < max_ticks; ++k) {
        bool any_active = false;
        for (std::size_t lane = 0; lane < block.lanes; ++lane)
            any_active = any_active || block.active[lane];
        if (!any_active)
            break;
        stepBlockTick(block, mission, spec, k);
    }
    for (std::size_t lane = 0; lane < block.lanes; ++lane) {
        if (block.active[lane])
            finishLane(block, lane, spec.maxDurationS);
    }
    // Publish outcomes to the logical per-drone slots.
    for (std::size_t lane = 0; lane < block.lanes; ++lane) {
        DroneOutcome &out = *block.out[lane];
        out.crashed = block.crashed[lane];
        out.landed = block.landed[lane];
        out.missionComplete = block.complete[lane];
        out.waypointsReached =
            static_cast<std::uint32_t>(block.leg[lane]);
        out.flightTimeS = block.endT[lane];
        out.energyWh = block.energyWh[lane];
        out.maxTrackErrM = block.maxErrM[lane];
        out.maxEstErrM = block.maxEstErrM[lane];
        out.worstMode =
            static_cast<FlightMode>(block.worstMode[lane]);
        out.tier = fault::DegradationPolicy::outcomeFor(
            out.crashed, out.missionComplete, out.worstMode);
    }
}

void
validateSpec(const FleetSpec &spec)
{
    if (spec.scenarios.empty())
        fatal("runFleet: no scenarios");
    if (spec.dronesPerScenario == 0)
        fatal("runFleet: dronesPerScenario must be > 0");
    if (spec.tickS <= 0.0 || spec.maxDurationS <= spec.tickS)
        fatal("runFleet: tick and max duration must be positive "
              "with at least one tick");
    for (const auto &scenario : spec.scenarios) {
        if (!(scenario.env.batteryAge > 0.0 &&
              scenario.env.batteryAge <= 1.0))
            fatal("runFleet: scenario '" + scenario.name +
                  "' battery age must lie in (0, 1]");
        if (scenario.env.windMps < 0.0 ||
            scenario.env.payloadG < 0.0)
            fatal("runFleet: scenario '" + scenario.name +
                  "' wind and payload must be non-negative");
    }
}

FleetResult
runFleetImpl(const FleetSpec &spec, int jobs,
             const std::vector<std::size_t> *order)
{
    validateSpec(spec);
    obs::ScopedSpan fleet_span("fleet.run", "fleet");

    const std::size_t total =
        spec.scenarios.size() * spec.dronesPerScenario;
    if (order && order->size() != total)
        fatal("runFleet: order must be a permutation of the "
              "flattened (scenario, drone) index space");

    FleetResult result;
    result.scenarios.resize(spec.scenarios.size());
    std::vector<ScenarioCtx> contexts;
    contexts.reserve(spec.scenarios.size());
    for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
        result.scenarios[s].name = spec.scenarios[s].name;
        result.scenarios[s].outcomes.resize(spec.dronesPerScenario);
        contexts.emplace_back(spec.scenarios[s]);
    }
    result.missionsFlown = total;
    obs::metrics().counter("fleet.missions.flown").add(total);

    engine::ThreadPool pool(jobs);

    if (spec.fidelity == FleetFidelity::FullStack) {
        // Oracle tier: the complete single-mission stack per drone.
        // Environment axes are a reduced-model concept; the full
        // harness has its own fixed wind model, so only the nominal
        // operating point is meaningful here.
        for (const auto &scenario : spec.scenarios) {
            if (!(scenario.env == EnvAxes{}))
                fatal("runFleet: FullStack fidelity supports only "
                      "the nominal EnvAxes operating point "
                      "(scenario '" +
                      scenario.name + "')");
            result.scenarios[&scenario - spec.scenarios.data()]
                .fullReports.resize(spec.dronesPerScenario);
        }
        pool.parallelFor(
            total, 1, [&](std::size_t slot, int) {
                const std::size_t logical =
                    order ? (*order)[slot] : slot;
                const std::size_t s =
                    logical / spec.dronesPerScenario;
                const std::size_t d =
                    logical % spec.dronesPerScenario;
                fault::ResilienceConfig config = spec.fullStack;
                config.policyEnabled = spec.policyEnabled;
                config.seed =
                    deriveDroneSeed(spec.fleetSeed, logical);
                fault::MissionReport report =
                    fault::runResilienceMission(
                        spec.scenarios[s].faults, config);
                ScenarioResult &slot_result = result.scenarios[s];
                DroneOutcome &out = slot_result.outcomes[d];
                out.tier = report.tier;
                out.crashed = report.crashed;
                out.landed = report.landed;
                out.missionComplete = report.missionComplete;
                out.waypointsReached = static_cast<std::uint32_t>(
                    report.waypointsReached);
                out.flightTimeS = report.flightTimeS;
                out.energyWh = report.energyWh;
                out.maxTrackErrM = report.maxTrackErrM;
                out.maxEstErrM = report.maxEstErrM;
                out.worstMode = report.worstMode;
                slot_result.fullReports[d] = std::move(report);
            });
    } else {
        const CompiledMission mission =
            compileMission(spec.mission);
        // Lane-block chunks: the pool deals [begin, end) ranges;
        // each chunk is stepped as blocks of kFleetLaneWidth.
        // Per-drone results depend only on (fleetSeed, logical
        // index, scenario), so any chunking/stealing/order is
        // byte-identical.
        pool.parallelForChunks(
            total, 0,
            [&](std::size_t begin, std::size_t end, int) {
                for (std::size_t b = begin; b < end;
                     b += kFleetLaneWidth) {
                    LaneBlock block;
                    block.lanes =
                        std::min(kFleetLaneWidth, end - b);
                    for (std::size_t lane = 0;
                         lane < block.lanes; ++lane) {
                        const std::size_t slot = b + lane;
                        const std::size_t logical =
                            order ? (*order)[slot] : slot;
                        const std::size_t s =
                            logical / spec.dronesPerScenario;
                        const std::size_t d =
                            logical % spec.dronesPerScenario;
                        initLane(block, lane, contexts[s],
                                 result.scenarios[s].outcomes[d],
                                 deriveDroneSeed(spec.fleetSeed,
                                                 logical));
                    }
                    runBlock(block, mission, spec);
                }
            });
    }

    std::uint64_t crashed = 0;
    for (const auto &scenario : result.scenarios)
        crashed +=
            scenario.tierCount(fault::OutcomeTier::Crashed);
    obs::metrics().counter("fleet.missions.crashed").add(crashed);
    obs::metrics()
        .counter("fleet.missions.survived")
        .add(total - crashed);
    return result;
}

std::string
num17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

std::uint64_t
deriveDroneSeed(std::uint64_t fleet_seed, std::uint64_t drone_index)
{
    // SplitMix64 finalization over the (seed, index) pair: adjacent
    // indices land far apart in the xoshiro seeding space.
    std::uint64_t z =
        fleet_seed + 0x9e3779b97f4a7c15ULL * (drone_index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
ScenarioResult::survivalRate() const
{
    if (outcomes.empty())
        return 0.0;
    std::size_t survived = 0;
    for (const auto &outcome : outcomes)
        survived += outcome.tier != fault::OutcomeTier::Crashed;
    return static_cast<double>(survived) /
           static_cast<double>(outcomes.size());
}

Ecdf
ScenarioResult::flightTimeEcdf() const
{
    std::vector<double> samples;
    samples.reserve(outcomes.size());
    for (const auto &outcome : outcomes)
        samples.push_back(outcome.flightTimeS);
    return Ecdf(std::move(samples));
}

Ecdf
ScenarioResult::energyEcdf() const
{
    std::vector<double> samples;
    samples.reserve(outcomes.size());
    for (const auto &outcome : outcomes)
        samples.push_back(outcome.energyWh);
    return Ecdf(std::move(samples));
}

std::size_t
ScenarioResult::tierCount(fault::OutcomeTier tier) const
{
    std::size_t count = 0;
    for (const auto &outcome : outcomes)
        count += outcome.tier == tier;
    return count;
}

FleetResult
runFleet(const FleetSpec &spec, int jobs)
{
    return runFleetImpl(spec, jobs, nullptr);
}

FleetResult
runFleetPermuted(const FleetSpec &spec, int jobs,
                 const std::vector<std::size_t> &order)
{
    return runFleetImpl(spec, jobs, &order);
}

std::string
fleetSummaryCsv(const FleetResult &result)
{
    std::string csv =
        "scenario,drones,survival_rate,crashed,landed_safe,"
        "survived_degraded,completed,q10_flight_s,q50_flight_s,"
        "q90_flight_s,p_flight_ge_60s,mean_energy_wh\n";
    for (const auto &scenario : result.scenarios) {
        const Ecdf flight = scenario.flightTimeEcdf();
        const Ecdf energy = scenario.energyEcdf();
        csv += scenario.name;
        csv += ',';
        csv += std::to_string(scenario.outcomes.size());
        csv += ',';
        csv += num17(scenario.survivalRate());
        csv += ',';
        csv += std::to_string(
            scenario.tierCount(fault::OutcomeTier::Crashed));
        csv += ',';
        csv += std::to_string(
            scenario.tierCount(fault::OutcomeTier::LandedSafe));
        csv += ',';
        csv += std::to_string(scenario.tierCount(
            fault::OutcomeTier::SurvivedDegraded));
        csv += ',';
        csv += std::to_string(
            scenario.tierCount(fault::OutcomeTier::Completed));
        csv += ',';
        csv += num17(flight.quantile(0.10));
        csv += ',';
        csv += num17(flight.quantile(0.50));
        csv += ',';
        csv += num17(flight.quantile(0.90));
        csv += ',';
        csv += num17(flight.probAtLeast(60.0));
        csv += ',';
        csv += num17(energy.mean());
        csv += '\n';
    }
    return csv;
}

std::string
fleetEcdfCsv(const FleetResult &result)
{
    std::string csv = "scenario,metric,value,cum_prob\n";
    for (const auto &scenario : result.scenarios) {
        csv += scenario.flightTimeEcdf().toCsvRows(
            scenario.name + ",flight_time_s");
        csv += scenario.energyEcdf().toCsvRows(scenario.name +
                                               ",energy_wh");
    }
    return csv;
}

} // namespace dronedse::fleet
