/**
 * @file
 * Multi-stage mission specifications for the fleet engine.
 *
 * MAVBench (PAPERS.md 1905.06388) shows that compute/energy
 * tradeoffs only surface on *multi-stage* missions — takeoff,
 * navigate to an area, search it, return home — because each stage
 * stresses a different mix of speed, perception load, and hover
 * time.  A `MissionSpec` is an ordered list of such stages; the
 * fleet stepper flies it by compiling the stages into a flat list of
 * legs (each a straight path segment with a commanded speed and an
 * altitude profile), so mission progress is one arc-length scalar
 * per drone — the SoA-friendly representation the lane-block
 * stepper needs.
 *
 * Stage semantics:
 *   Takeoff   climb from ground to `altitudeM` at `speedMps`
 *   Navigate  fly `distanceM` at cruise `speedMps` at altitude
 *   Search    `legs` lawnmower passes of `legLengthM` each at
 *             search `speedMps` (perception-heavy: onboard-SLAM
 *             fallback costs more here, see fleet.cc board power)
 *   Return    fly `distanceM` home at `speedMps`, then descend to
 *             ground at `descentMps` (the final leg; completing it
 *             is a landed, mission-complete outcome)
 *
 * Every compiled leg counts as one waypoint for the
 * `waypointsReached` report field.
 */

#ifndef DRONEDSE_FLEET_MISSION_SPEC_HH
#define DRONEDSE_FLEET_MISSION_SPEC_HH

#include <cstddef>
#include <string>
#include <vector>

namespace dronedse::fleet {

/** The four MAVBench-style mission stages. */
enum class StageKind
{
    Takeoff = 0,
    Navigate,
    Search,
    Return,
};

/** Human-readable stage name (lower_snake, stable). */
const char *stageKindName(StageKind kind);

/** One stage of a mission. */
struct MissionStage
{
    StageKind kind = StageKind::Navigate;
    /** Takeoff: target altitude (m). */
    double altitudeM = 3.0;
    /** Navigate/Return: leg distance (m). */
    double distanceM = 20.0;
    /** Commanded ground speed for the stage (m/s). */
    double speedMps = 3.0;
    /** Search: number of lawnmower passes. */
    int legs = 4;
    /** Search: length of each pass (m). */
    double legLengthM = 12.0;
    /** Return: descent rate for the final landing leg (m/s). */
    double descentMps = 0.5;
};

/** An ordered multi-stage mission. */
struct MissionSpec
{
    std::string name;
    std::string description;
    std::vector<MissionStage> stages;
};

/** One compiled straight-line leg of a mission. */
struct CompiledLeg
{
    StageKind stage = StageKind::Navigate;
    /** Leg length along the path (m); always > 0. */
    double lengthM = 0.0;
    /** Commanded speed on this leg (m/s). */
    double speedMps = 0.0;
    /** Altitude change over the leg (m, signed; 0 = level). */
    double climbM = 0.0;
};

/** A mission flattened to legs; progress is one arc length. */
struct CompiledMission
{
    std::vector<CompiledLeg> legs;
    /** Sum of leg lengths (m). */
    double totalLengthM = 0.0;
    /** Cumulative length at the end of each leg (m). */
    std::vector<double> cumulativeM;
};

/**
 * Flatten a spec to legs.  fatal() on empty or malformed specs
 * (non-positive speeds/lengths, missions are configuration).
 */
CompiledMission compileMission(const MissionSpec &spec);

/**
 * The built-in mission catalog (MAVBench-style):
 *   survey           takeoff, short transit, 4-leg search, return
 *   delivery         takeoff, long fast transit, return
 *   search_rescue    takeoff, transit, 8-leg wide-area search,
 *                    return (the long perception-heavy workload)
 *   perimeter        takeoff, 4 navigate legs around a site, return
 */
const std::vector<MissionSpec> &missionCatalog();

/** Look up a catalog mission by name; fatal() when absent. */
const MissionSpec &findMission(const std::string &name);

} // namespace dronedse::fleet

#endif // DRONEDSE_FLEET_MISSION_SPEC_HH
