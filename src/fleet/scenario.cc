#include "fleet/scenario.hh"

#include <cstdio>

#include "util/logging.hh"

namespace dronedse::fleet {

std::string
EnvAxes::tag() const
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "w%.17g_p%.17g_a%.17g", windMps,
                  payloadG, batteryAge);
    return buf;
}

ComposedCatalog
composedCatalog()
{
    const auto &catalog = fault::scenarioCatalog();
    ComposedCatalog out;

    for (const auto &single : catalog)
        out.scenarios.push_back({single.name, single, EnvAxes{}});

    for (const auto &a : catalog) {
        for (const auto &b : catalog) {
            if (a.name == b.name)
                continue;
            auto composed = fault::composeScenarios(a, b);
            if (composed.ok()) {
                out.scenarios.push_back({composed.scenario->name,
                                         std::move(*composed.scenario),
                                         EnvAxes{}});
            } else {
                ++out.rejectedPairs;
                out.rejections.push_back(std::move(*composed.error));
            }
        }
    }
    return out;
}

std::vector<ComposedScenario>
crossWithAxes(const std::vector<ComposedScenario> &scenarios,
              const std::vector<double> &winds_mps,
              const std::vector<double> &payloads_g,
              const std::vector<double> &battery_ages)
{
    if (winds_mps.empty() || payloads_g.empty() ||
        battery_ages.empty())
        fatal("crossWithAxes: every axis needs at least one value");
    for (double age : battery_ages) {
        if (!(age > 0.0 && age <= 1.0))
            fatal("crossWithAxes: battery age must lie in (0, 1]");
    }
    for (double wind : winds_mps) {
        if (wind < 0.0)
            fatal("crossWithAxes: wind must be non-negative");
    }
    for (double payload : payloads_g) {
        if (payload < 0.0)
            fatal("crossWithAxes: payload must be non-negative");
    }

    std::vector<ComposedScenario> out;
    out.reserve(scenarios.size() * winds_mps.size() *
                payloads_g.size() * battery_ages.size());
    for (const auto &scenario : scenarios) {
        for (double wind : winds_mps) {
            for (double payload : payloads_g) {
                for (double age : battery_ages) {
                    ComposedScenario c = scenario;
                    c.env.windMps = wind;
                    c.env.payloadG = payload;
                    c.env.batteryAge = age;
                    c.name = scenario.name + "@" + c.env.tag();
                    out.push_back(std::move(c));
                }
            }
        }
    }
    return out;
}

std::vector<ComposedScenario>
wrapScenarios(const std::vector<fault::FaultScenario> &scenarios)
{
    std::vector<ComposedScenario> out;
    out.reserve(scenarios.size());
    for (const auto &scenario : scenarios)
        out.push_back({scenario.name, scenario, EnvAxes{}});
    return out;
}

} // namespace dronedse::fleet
