/**
 * @file
 * Execution-time model: maps the SLAM pipeline's measured per-phase
 * work onto each platform and produces the Figure 17 speedup bars.
 */

#ifndef DRONEDSE_PLATFORM_EXEC_MODEL_HH
#define DRONEDSE_PLATFORM_EXEC_MODEL_HH

#include <array>
#include <string>
#include <vector>

#include "platform/platform.hh"

namespace dronedse {

/** Per-phase and total time of one sequence on one platform. */
struct PlatformTimes
{
    PlatformKind kind = PlatformKind::RPi;
    std::array<double, static_cast<std::size_t>(SlamPhase::NumPhases)>
        phaseSeconds{};
    double totalSeconds = 0.0;
};

/** Time the measured work on one platform. */
PlatformTimes
timeOnPlatform(const std::array<
                   PhaseWork,
                   static_cast<std::size_t>(SlamPhase::NumPhases)> &work,
               PlatformKind kind);

/** One Figure 17 bar group. */
struct Figure17Row
{
    std::string sequence;
    std::string difficulty;
    /** Per-platform total times (s) in Table 5 order. */
    std::array<double, 4> totalSeconds{};
    /** Speedup over RPi per platform. */
    std::array<double, 4> speedup{};
    /** Fraction of RPi time spent in BA (local+global). */
    double rpiBaFraction = 0.0;
    /** Phase split of the TX2/FPGA speedup rows (Figure 17 stacks). */
    PlatformTimes tx2;
    PlatformTimes fpga;
};

/** The full Figure 17 dataset plus geomean row. */
struct Figure17Data
{
    std::vector<Figure17Row> rows;
    /** Geomean speedups over RPi (RPi, TX2, FPGA, ASIC). */
    std::array<double, 4> geomeanSpeedup{};
};

/**
 * Run every EuRoC-like sequence through the pipeline and assemble
 * the Figure 17 dataset.
 *
 * @param frame_limit Optional cap on frames per sequence (0 = full
 *        length); tests use a cap to stay fast.
 */
Figure17Data runFigure17(int frame_limit = 0);

} // namespace dronedse

#endif // DRONEDSE_PLATFORM_EXEC_MODEL_HH
