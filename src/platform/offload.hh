/**
 * @file
 * Table 5: the cost/benefit of hosting SLAM on each platform, and
 * the paper's conclusion that the FPGA is the most cost-effective
 * choice for both small and large drones.
 */

#ifndef DRONEDSE_PLATFORM_OFFLOAD_HH
#define DRONEDSE_PLATFORM_OFFLOAD_HH

#include <vector>

#include "platform/platform.hh"

namespace dronedse {

/** Assumptions behind the Table 5 flight-time arithmetic. */
struct OffloadScenario
{
    /** Baseline flight time (min); Table 5 footnote uses 15. */
    double baselineFlightMin = 15.0;
    /**
     * Small-drone total power (W): the paper's "CPU/GPU to FPGA is
     * ~15-20 % of total" implies ~50 W.
     */
    double smallDronePowerW = 50.0;
    /** Large-drone total power (W); Figure 16b measures ~130-140. */
    double largeDronePowerW = 140.0;
    /**
     * Compute power being replaced (W): the CPU/GPU system hosting
     * SLAM before offload (TX2-class, Section 5.2's "saving 10 W by
     * moving from TX2 to FPGA").
     */
    double replacedComputeW = 10.0;
};

/** One Table 5 column. */
struct OffloadAssessment
{
    PlatformSpec spec;
    /** SLAM speedup over the RPi baseline (geomean, Figure 17). */
    double slamSpeedup = 1.0;
    /** Gained flight time, small drones (min, paper arithmetic). */
    double gainedSmallMin = 0.0;
    /** Gained flight time, large drones (min). */
    double gainedLargeMin = 0.0;
};

/**
 * Assemble Table 5.
 *
 * @param speedups Geomean speedups per platform (from runFigure17),
 *        RPi first.
 */
std::vector<OffloadAssessment>
assessOffload(const std::array<double, 4> &speedups,
              const OffloadScenario &scenario = {});

/**
 * The paper's recommendation logic: rank platforms by gained flight
 * time, breaking near-ties (within `tie_margin`) toward lower
 * integration+fabrication cost.  Returns the winner — the FPGA
 * under the paper's numbers.
 */
const OffloadAssessment &
recommendPlatform(const std::vector<OffloadAssessment> &table,
                  bool small_drone = true,
                  Quantity<Minutes> tie_margin =
                      Quantity<Minutes>(0.5));

/** Link model parameters. */
struct OffloadLinkConfig
{
    /** Healthy round-trip latency (ms). */
    double baseLatencyMs = 5.0;
    /**
     * Latency past which an offloaded result misses its outer-loop
     * deadline and the link counts as unusable (ms).
     */
    double usableLatencyMs = 60.0;
};

/**
 * The wireless/tether link a drone offloads SLAM over.  Table 5
 * prices the *steady-state* benefit of offload; this model adds the
 * failure dimension — outages and latency spikes the degradation
 * policy must react to.  State changes come from the fault injector;
 * `attempt` is how the policy's backoff retries probe for recovery.
 */
class OffloadLink
{
  public:
    explicit OffloadLink(OffloadLinkConfig config = {});

    /** Take the link down / bring it back (fault injection). */
    void setDown(bool down);

    /** Add-on round-trip latency (ms); 0 restores the base. */
    void setLatencySpikeMs(double add_on);

    /** Link carrier present. */
    bool up() const { return !down_; }

    /** Current round-trip (ms); meaningless while down. */
    double roundTripMs() const;

    /** Up and fast enough to make offload deadlines. */
    bool usable() const;

    /**
     * Probe the link (a policy backoff retry): succeeds iff the
     * link is currently usable.  Counts attempts and failures.
     */
    bool attempt();

    long attempts() const { return attempts_; }
    long failures() const { return failures_; }

    const OffloadLinkConfig &config() const { return config_; }

  private:
    OffloadLinkConfig config_;
    bool down_ = false;
    double spikeMs_ = 0.0;
    long attempts_ = 0;
    long failures_ = 0;
};

} // namespace dronedse

#endif // DRONEDSE_PLATFORM_OFFLOAD_HH
