#include "platform/platform.hh"

#include "util/logging.hh"

namespace dronedse {

const char *
costLevelName(CostLevel level)
{
    switch (level) {
      case CostLevel::Low:
        return "Low";
      case CostLevel::Medium:
        return "Medium";
      case CostLevel::High:
        return "High";
    }
    panic("costLevelName: invalid level");
}

namespace {

/** Phase order: feature, matching, tracking, local BA, global BA. */
constexpr std::size_t kN =
    static_cast<std::size_t>(SlamPhase::NumPhases);

/**
 * RPi-4 baseline throughputs (ops/s).  Matching and tracking run at
 * scalar-integer speed; the BA phases crawl (dense linear algebra on
 * an in-order-friendly core), which is what puts ~90 % of the
 * execution time into bundle adjustment.
 */
constexpr std::array<double, kN> kRpiThroughput = {
    120.0e6, // feature extraction
    180.0e6, // matching (popcount-heavy)
    60.0e6,  // tracking
    2.0e6,   // local BA
    2.0e6,   // global BA
};

std::array<double, kN>
scaled(const std::array<double, kN> &base,
       const std::array<double, kN> &factor)
{
    std::array<double, kN> out{};
    for (std::size_t i = 0; i < kN; ++i)
        out[i] = base[i] * factor[i];
    return out;
}

} // namespace

const std::vector<PlatformSpec> &
allPlatforms()
{
    static const std::vector<PlatformSpec> specs = [] {
        std::vector<PlatformSpec> v(4);

        v[0].kind = PlatformKind::RPi;
        v[0].name = "RPi";
        v[0].powerOverheadW = Quantity<Watts>(2.0);
        v[0].weightOverheadG = Quantity<Grams>(50.0);
        v[0].integrationCost = CostLevel::Low;
        v[0].fabricationCost = CostLevel::Low;
        v[0].phaseThroughput = kRpiThroughput;

        // TX2: the GPU devours feature extraction and matching;
        // bundle adjustment gains only ~2x (sparse, divergent).
        v[1].kind = PlatformKind::TX2;
        v[1].name = "TX2";
        v[1].powerOverheadW = Quantity<Watts>(10.0);
        v[1].weightOverheadG = Quantity<Grams>(85.0);
        v[1].integrationCost = CostLevel::Low;
        v[1].fabricationCost = CostLevel::Low;
        v[1].phaseThroughput =
            scaled(kRpiThroughput, {9.0, 9.0, 2.0, 1.8, 1.8});

        // FPGA: dense fixed-size matrix pipeline for BA (~40x) plus
        // an eSLAM-style feature front end (~10x).
        v[2].kind = PlatformKind::Fpga;
        v[2].name = "FPGA";
        v[2].powerOverheadW = Quantity<Watts>(0.417);
        v[2].weightOverheadG = Quantity<Grams>(75.0);
        v[2].integrationCost = CostLevel::Medium;
        v[2].fabricationCost = CostLevel::Medium;
        v[2].phaseThroughput =
            scaled(kRpiThroughput, {12.0, 12.0, 12.0, 50.0, 50.0});

        // ASIC (Navion-class): slightly below the FPGA's raw BA
        // throughput at a tiny power budget.
        v[3].kind = PlatformKind::Asic;
        v[3].name = "ASIC";
        v[3].powerOverheadW = Quantity<Watts>(0.024);
        v[3].weightOverheadG = Quantity<Grams>(20.0);
        v[3].integrationCost = CostLevel::High;
        v[3].fabricationCost = CostLevel::High;
        v[3].phaseThroughput =
            scaled(kRpiThroughput, {8.0, 8.0, 8.0, 45.0, 45.0});
        return v;
    }();
    return specs;
}

const PlatformSpec &
platformSpec(PlatformKind kind)
{
    const auto idx = static_cast<std::size_t>(kind);
    if (idx >= allPlatforms().size())
        fatal("platformSpec: invalid platform kind");
    return allPlatforms()[idx];
}

} // namespace dronedse
