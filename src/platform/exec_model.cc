#include "platform/exec_model.hh"

#include "util/regression.hh"

namespace dronedse {

PlatformTimes
timeOnPlatform(const std::array<
                   PhaseWork,
                   static_cast<std::size_t>(SlamPhase::NumPhases)> &work,
               PlatformKind kind)
{
    const PlatformSpec &spec = platformSpec(kind);
    PlatformTimes times;
    times.kind = kind;
    for (std::size_t p = 0; p < work.size(); ++p) {
        times.phaseSeconds[p] = static_cast<double>(work[p].ops) /
                                spec.phaseThroughput[p];
        times.totalSeconds += times.phaseSeconds[p];
    }
    return times;
}

Figure17Data
runFigure17(int frame_limit)
{
    Figure17Data data;
    std::array<std::vector<double>, 4> speedups;

    for (const SequenceSpec &base_spec : euRocSequences()) {
        SequenceSpec spec = base_spec;
        if (frame_limit > 0 && spec.frames > frame_limit)
            spec.frames = frame_limit;

        const SequenceStats stats = SlamPipeline::runSequence(spec);

        Figure17Row row;
        row.sequence = spec.name;
        row.difficulty = spec.difficulty;

        const PlatformTimes rpi =
            timeOnPlatform(stats.work, PlatformKind::RPi);
        row.tx2 = timeOnPlatform(stats.work, PlatformKind::TX2);
        row.fpga = timeOnPlatform(stats.work, PlatformKind::Fpga);
        const PlatformTimes asic =
            timeOnPlatform(stats.work, PlatformKind::Asic);

        row.totalSeconds = {rpi.totalSeconds, row.tx2.totalSeconds,
                            row.fpga.totalSeconds, asic.totalSeconds};
        for (std::size_t i = 0; i < 4; ++i) {
            row.speedup[i] = rpi.totalSeconds / row.totalSeconds[i];
            speedups[i].push_back(row.speedup[i]);
        }
        const double ba_time =
            rpi.phaseSeconds[static_cast<std::size_t>(
                SlamPhase::LocalBa)] +
            rpi.phaseSeconds[static_cast<std::size_t>(
                SlamPhase::GlobalBa)];
        row.rpiBaFraction = ba_time / rpi.totalSeconds;
        data.rows.push_back(std::move(row));
    }

    for (std::size_t i = 0; i < 4; ++i)
        data.geomeanSpeedup[i] = geomean(speedups[i]);
    return data;
}

} // namespace dronedse
