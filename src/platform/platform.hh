/**
 * @file
 * Hardware platforms for SLAM offload (paper Section 5, Table 5):
 * Raspberry Pi 4 baseline, Nvidia Jetson TX2, a ZYNQ-class FPGA, and
 * a Navion-class ASIC.  Each platform is an execution model (phase
 * throughputs over the pipeline's abstract op counts) plus power,
 * weight, and cost attributes.
 */

#ifndef DRONEDSE_PLATFORM_PLATFORM_HH
#define DRONEDSE_PLATFORM_PLATFORM_HH

#include <array>
#include <string>
#include <vector>

#include "slam/pipeline.hh"
#include "util/quantity.hh"

namespace dronedse {

/** The platforms of Table 5. */
enum class PlatformKind
{
    RPi = 0,
    TX2,
    Fpga,
    Asic,
    NumPlatforms,
};

/** Qualitative cost level (Table 5 rows). */
enum class CostLevel
{
    Low,
    Medium,
    High,
};

/** Render a cost level. */
const char *costLevelName(CostLevel level);

/** Static description of one platform. */
struct PlatformSpec
{
    PlatformKind kind = PlatformKind::RPi;
    std::string name;
    /**
     * Power overhead of hosting SLAM on this platform, Table 5:
     * RPi 2 W, TX2 10 W, FPGA 0.417 W, ASIC 0.024 W.
     */
    Quantity<Watts> powerOverheadW{2.0};
    /** Weight overhead, Table 5: 50 / 85 / 75 / 20 g. */
    Quantity<Grams> weightOverheadG{50.0};
    CostLevel integrationCost = CostLevel::Low;
    CostLevel fabricationCost = CostLevel::Low;
    /**
     * Phase throughputs (abstract pipeline ops per second).  The
     * RPi row is calibrated so bundle adjustment takes ~90 % of its
     * execution time (paper Section 5.2); accelerators scale each
     * phase according to what they accelerate (TX2: GPU feature
     * extraction; FPGA: dense-matrix BA pipeline + eSLAM front end;
     * ASIC: Navion-style full pipeline).
     */
    std::array<double, static_cast<std::size_t>(SlamPhase::NumPhases)>
        phaseThroughput{};
};

/** Look up a platform's spec. */
const PlatformSpec &platformSpec(PlatformKind kind);

/** All four platforms in Table 5 order. */
const std::vector<PlatformSpec> &allPlatforms();

} // namespace dronedse

#endif // DRONEDSE_PLATFORM_PLATFORM_HH
