#include "platform/offload.hh"

#include "dse/footprint.hh"
#include "util/logging.hh"

namespace dronedse {

namespace {

/**
 * The paper's linearized, power-only flight-time gain (Section 5.2:
 * "saving 10 W by moving from TX2 to FPGA gives us +1 minute
 * (~10/140 x 15 min)").  Accelerators (FPGA/ASIC) are credited with
 * replacing the CPU/GPU system that hosted SLAM; the TX2 itself is
 * assessed against the RPi baseline, which is why its row is
 * negative.  A weight-aware exact analysis is available through
 * platformSwapGainMin() in the DSE library.
 */
double
gainMin(const PlatformSpec &spec, const OffloadScenario &sc,
        double total_power_w)
{
    Quantity<Watts> replaced_w{sc.replacedComputeW};
    if (spec.kind == PlatformKind::TX2) {
        replaced_w = platformSpec(PlatformKind::RPi).powerOverheadW;
    }
    const Quantity<Watts> power_saved =
        replaced_w - spec.powerOverheadW;
    return gainedFlightTimeApproxMin(
               power_saved,
               Quantity<Watts>(total_power_w),
               Quantity<Minutes>(sc.baselineFlightMin))
        .value();
}

int
costScore(const PlatformSpec &spec)
{
    return static_cast<int>(spec.integrationCost) +
           static_cast<int>(spec.fabricationCost);
}

} // namespace

std::vector<OffloadAssessment>
assessOffload(const std::array<double, 4> &speedups,
              const OffloadScenario &scenario)
{
    std::vector<OffloadAssessment> table;
    table.reserve(4);
    for (std::size_t i = 0; i < allPlatforms().size(); ++i) {
        OffloadAssessment a;
        a.spec = allPlatforms()[i];
        a.slamSpeedup = speedups[i];

        if (a.spec.kind == PlatformKind::RPi) {
            // The baseline: zero gain by definition.
            a.gainedSmallMin = 0.0;
            a.gainedLargeMin = 0.0;
        } else {
            a.gainedSmallMin = gainMin(a.spec, scenario,
                                       scenario.smallDronePowerW);
            a.gainedLargeMin = gainMin(a.spec, scenario,
                                       scenario.largeDronePowerW);
        }
        table.push_back(std::move(a));
    }
    return table;
}

OffloadLink::OffloadLink(OffloadLinkConfig config)
    : config_(config)
{
    if (config_.baseLatencyMs < 0.0 ||
        config_.usableLatencyMs < config_.baseLatencyMs)
        fatal("OffloadLink: invalid latency configuration");
}

void
OffloadLink::setDown(bool down)
{
    down_ = down;
}

void
OffloadLink::setLatencySpikeMs(double add_on)
{
    if (add_on < 0.0)
        fatal("OffloadLink::setLatencySpikeMs: must be >= 0");
    spikeMs_ = add_on;
}

double
OffloadLink::roundTripMs() const
{
    return config_.baseLatencyMs + spikeMs_;
}

bool
OffloadLink::usable() const
{
    return !down_ && roundTripMs() <= config_.usableLatencyMs;
}

bool
OffloadLink::attempt()
{
    ++attempts_;
    if (usable())
        return true;
    ++failures_;
    return false;
}

const OffloadAssessment &
recommendPlatform(const std::vector<OffloadAssessment> &table,
                  bool small_drone, Quantity<Minutes> tie_margin)
{
    if (table.empty())
        fatal("recommendPlatform: empty assessment table");

    const double tie_margin_min = tie_margin.value();
    const OffloadAssessment *best = &table.front();
    auto gain = [&](const OffloadAssessment &a) {
        return small_drone ? a.gainedSmallMin : a.gainedLargeMin;
    };
    for (const auto &a : table) {
        if (gain(a) > gain(*best) + tie_margin_min) {
            best = &a;
        } else if (gain(a) > gain(*best) - tie_margin_min &&
                   costScore(a.spec) < costScore(best->spec)) {
            // Near-tie: prefer the cheaper platform to integrate
            // and fabricate (the paper's FPGA-over-ASIC argument).
            best = &a;
        }
    }
    return *best;
}

} // namespace dronedse
