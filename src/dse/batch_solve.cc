#include "dse/batch_solve.hh"

#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "components/battery.hh"
#include "components/esc.hh"
#include "components/frame.hh"
#include "components/propeller.hh"
#include "dse/weight_closure.hh"
#include "physics/lipo.hh"
#include "physics/propeller_aero.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

namespace {

constexpr std::size_t kW = kBatchLaneWidth;

/**
 * Per-lane loop-invariant state of one block, structure-of-arrays.
 * Everything the fixed-point iteration reads is a plain double here;
 * the typed `Quantity` algebra runs in the scalar prologue/epilogue
 * and only its final magnitudes enter the lanes.  Each invariant is
 * the exact double the scalar path would recompute every iteration
 * (hoisting a bit-identical subexpression is bit-preserving; the
 * iteration-dependent expressions below keep the scalar path's
 * association untouched).
 */
struct BlockState
{
    std::array<double, kW> total;        // running all-up weight (g)
    std::array<double, kW> fixedW;       // thrust-independent weight
    std::array<double, kW> twrQuarter;   // twr / 4.0
    std::array<double, kW> propDm;       // prop diameter (m)
    std::array<double, kW> thrustDenom;  // Ct*rho*d^4 of revsForThrust
    std::array<double, kW> volt;         // pack voltage (V)
    std::array<double, kW> kvDenom;      // kLoadedRpmFraction * V
    std::array<double, kW> escSlope;     // Figure 8a fit slope
    std::array<double, kW> escIntercept; // Figure 8a fit intercept
    // Kernel values of the lane's most recent active iteration; on
    // convergence these are exactly the scalar path's final motor
    // match and ESC weight.
    std::array<double, kW> lastThrust;
    std::array<double, kW> lastKv;
    std::array<double, kW> lastCurrent;
    std::array<double, kW> lastMotorW;
    std::array<double, kW> lastEscW;
    std::array<std::uint8_t, kW> active;
    std::array<std::uint8_t, kW> converged;
};

/** Lanes past the batch edge still execute; keep their math benign. */
void
padLane(BlockState &st, std::size_t l)
{
    st.total[l] = 1.0;
    st.fixedW[l] = 1.0;
    st.twrQuarter[l] = 1.0;
    st.propDm[l] = 1.0;
    st.thrustDenom[l] = 1.0;
    st.volt[l] = 1.0;
    st.kvDenom[l] = 1.0;
    st.escSlope[l] = 0.0;
    st.escIntercept[l] = 10.0;
    st.lastThrust[l] = 1.0;
    st.lastKv[l] = 0.0;
    st.lastCurrent[l] = 0.0;
    st.lastMotorW[l] = 0.0;
    st.lastEscW[l] = 10.0;
    st.active[l] = 0;
    st.converged[l] = 0;
}

/**
 * Scalar prologue of one lane: validation and the thrust-independent
 * weights, via the same component models `solveDesign` calls.
 * Returns false when the lane is finished before iterating (invalid
 * inputs — result already carries the scalar path's reason string).
 */
bool
setupLane(const DesignInputs &in, DesignResult &res, BlockState &st,
          std::size_t l)
{
    res = DesignResult{}; // output buffers may be reused across calls
    res.inputs = in;

    if (in.cells < kMinCells || in.cells > kMaxCells) {
        res.infeasibleReason = "cell count out of range";
        return false;
    }
    if (in.capacityMah.value() <= 0.0 || in.twr < 1.0 ||
        in.wheelbaseMm.value() <= 0.0) {
        res.infeasibleReason = "invalid capacity, TWR, or wheelbase";
        return false;
    }

    const Quantity<Inches> prop = in.propDiameterIn.value() > 0.0
                                      ? in.propDiameterIn
                                      : maxPropDiameterIn(in.wheelbaseMm);
    const Quantity<Volts> voltage = lipoPackVoltage(in.cells);

    res.frameWeightG = frameWeightG(in.wheelbaseMm);
    res.batteryWeightG = batteryWeightG(in.cells, in.capacityMah);
    res.propSetWeightG = propellerSetWeightG(prop);
    res.wiringWeightG = wiringWeightG(res.frameWeightG);
    const Quantity<Grams> fixed_weight =
        res.frameWeightG + res.batteryWeightG + res.propSetWeightG +
        res.wiringWeightG + Quantity<Grams>(in.compute.weightG) +
        in.sensorWeightG + in.payloadG;

    st.fixedW[l] = fixed_weight.value();
    st.total[l] = st.fixedW[l];
    st.twrQuarter[l] = in.twr / 4.0;
    // The scalar path would abort inside matchMotor on the first
    // iteration; keep the failure mode (and message) identical.
    if (weightForce(fixed_weight).value() * st.twrQuarter[l] <= 0.0)
        fatal("matchMotor: required thrust must be positive");

    const double d_m = inchesToMeters(prop).value();
    st.propDm[l] = d_m;
    st.thrustDenom[l] =
        kThrustCoefficient * kAirDensity * d_m * d_m * d_m * d_m;
    st.volt[l] = voltage.value();
    st.kvDenom[l] = kLoadedRpmFraction * voltage.value();
    const LinearFit esc_fit = paperEscFit(in.escClass);
    st.escSlope[l] = esc_fit.slope;
    st.escIntercept[l] = esc_fit.intercept;
    st.lastThrust[l] = 1.0;
    st.lastKv[l] = 0.0;
    st.lastCurrent[l] = 0.0;
    st.lastMotorW[l] = 0.0;
    st.lastEscW[l] = 10.0;
    st.active[l] = 1;
    st.converged[l] = 0;
    return true;
}

/**
 * Scalar epilogue of one converged lane: Equations 3-6 and the
 * C-rating sanity check, written with the same typed expressions —
 * in the same order — as `solveDesign`.  The motor record (and its
 * name string) is built here, once, from the lane's final kernel
 * values.
 */
void
finishLane(const DesignInputs &in, DesignResult &res,
           const BlockState &st, std::size_t l)
{
    if (!st.converged[l]) {
        res.infeasibleReason = "weight closure diverged";
        return;
    }

    const Quantity<Inches> prop = in.propDiameterIn.value() > 0.0
                                      ? in.propDiameterIn
                                      : maxPropDiameterIn(in.wheelbaseMm);
    const Quantity<Volts> voltage = lipoPackVoltage(in.cells);

    MotorRecord motor;
    motor.maxThrustG = st.lastThrust[l];
    motor.propDiameterIn = prop.value();
    motor.kv = st.lastKv[l];
    motor.maxCurrentA = st.lastCurrent[l];
    motor.weightG = st.lastMotorW[l];
    motor.name = "BLDC-" + std::to_string(static_cast<int>(motor.kv)) +
                 "Kv-" +
                 std::to_string(static_cast<int>(prop.value())) + "in";

    const Quantity<Grams> total{st.total[l]};
    const Quantity<Grams> esc_w{st.lastEscW[l]};

    res.totalWeightG = total;
    res.motor = motor;
    res.motorMaxCurrentA = motor.maxCurrent();
    res.motorSetWeightG = 4.0 * motor.weight();
    res.escSetWeightG = esc_w;
    res.basicWeightG = total - res.batteryWeightG - res.motorSetWeightG -
                       res.escSetWeightG;
    res.extremeKv = motor.kv > kExtremeKvThreshold;

    const double load = flyingLoadFraction(in.activity);
    res.maxPowerW = 4.0 * (motor.maxCurrent() * voltage);
    res.propulsionPowerW = res.maxPowerW * load;
    res.computePowerW = Quantity<Watts>(in.compute.powerW);
    res.sensorPowerW = in.sensorPowerW;
    res.avgPowerW =
        res.propulsionPowerW + res.computePowerW + res.sensorPowerW;

    res.usableEnergyWh = usableEnergyWh(in.capacityMah, voltage);
    res.flightTimeMin = wattHoursToMinutes(res.usableEnergyWh,
                                           res.avgPowerW);
    res.computePowerFraction = res.computePowerW / res.avgPowerW;

    const Quantity<Amperes> max_current_needed = 4.0 * motor.maxCurrent();
    const Quantity<Amperes> pack_limit =
        (in.capacityMah * 80.0 / Quantity<Hours>(1.0)).to<Amperes>();
    if (pack_limit < max_current_needed) {
        res.infeasibleReason = "battery C-rating cannot supply max draw";
        return;
    }

    res.feasible = true;
}

/** One block of up to `kBatchLaneWidth` designs, SoA fixed point. */
void
solveBlock(std::span<const DesignInputs> inputs,
           std::span<DesignResult> results)
{
    BlockState st;
    std::size_t n_active = 0;
    for (std::size_t l = 0; l < kW; ++l) {
        if (l < inputs.size()) {
            if (setupLane(inputs[l], results[l], st, l))
                ++n_active;
            else
                st.active[l] = 0;
        } else {
            padLane(st, l);
        }
    }

    // Unit-conversion factors of the scalar path, taken from the same
    // `Quantity` machinery (1.0 * factor == factor, exactly).
    const double gf_to_n = Quantity<GramsForce>(1.0).to<Newtons>().value();
    const double rev_to_rpm =
        Quantity<RevPerSec>(1.0).to<Rpm>().value();

    // Equation 1/2 fixed point, lanes innermost.  Every expression
    // below reproduces the scalar path's association exactly:
    // divisions stay divisions and the d_m multiply chains keep
    // `propShaftPowerW`'s left-to-right order, so each lane's doubles
    // match `solveDesign` bit for bit at every iteration.
    for (int iter = 0; iter < 60 && n_active > 0; ++iter) {
        for (std::size_t l = 0; l < kW; ++l) {
            const double dm = st.propDm[l];
            const double t = st.total[l] * st.twrQuarter[l];
            const double thrust_n = t * gf_to_n;
            const double n_rev = std::sqrt(thrust_n / st.thrustDenom[l]);
            const double shaft = kPowerCoefficient * kAirDensity *
                                 n_rev * n_rev * n_rev * dm * dm * dm *
                                 dm * dm;
            const double elec = shaft / kMotorEfficiency;
            const double current = elec / st.volt[l];
            const double kv = (n_rev * rev_to_rpm) / st.kvDenom[l];
            const double motor_w = 2.0 + t / 15.0;
            const double esc_fit =
                st.escSlope[l] * current + st.escIntercept[l];
            const double esc_w = esc_fit < 10.0 ? 10.0 : esc_fit;
            const double new_total =
                st.fixedW[l] + 4.0 * motor_w + esc_w;
            const double delta = std::fabs(new_total - st.total[l]);

            if (st.active[l]) {
                st.lastThrust[l] = t;
                st.lastKv[l] = kv;
                st.lastCurrent[l] = current;
                st.lastMotorW[l] = motor_w;
                st.lastEscW[l] = esc_w;
                st.total[l] = new_total;
                if (delta < 0.01) {
                    st.active[l] = 0;
                    st.converged[l] = 1;
                    --n_active;
                } else if (new_total > 1.0e6) {
                    st.active[l] = 0;
                    --n_active;
                }
            }
        }
    }
    // Lanes still active after 60 iterations are non-converged, the
    // same verdict the scalar loop reaches by falling out of it.

    for (std::size_t l = 0; l < inputs.size(); ++l) {
        if (!results[l].infeasibleReason.empty())
            continue; // failed validation in the prologue
        finishLane(inputs[l], results[l], st, l);
    }
}

} // namespace

void
solveDesignBatch(std::span<const DesignInputs> inputs,
                 std::span<DesignResult> results)
{
    if (inputs.size() != results.size())
        fatal("solveDesignBatch: inputs/results size mismatch");
    for (std::size_t begin = 0; begin < inputs.size(); begin += kW) {
        const std::size_t n = std::min(kW, inputs.size() - begin);
        solveBlock(inputs.subspan(begin, n), results.subspan(begin, n));
    }
}

std::vector<DesignResult>
solveDesignBatch(std::span<const DesignInputs> inputs)
{
    std::vector<DesignResult> results(inputs.size());
    solveDesignBatch(inputs, std::span<DesignResult>(results));
    return results;
}

} // namespace dronedse
