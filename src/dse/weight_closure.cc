#include "dse/weight_closure.hh"

#include <cmath>

#include "components/battery.hh"
#include "components/frame.hh"
#include "components/propeller.hh"
#include "physics/lipo.hh"
#include "physics/propeller_aero.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

double
wiringWeightG(double frame_weight_g)
{
    return 20.0 + 0.15 * frame_weight_g;
}

DesignResult
solveDesign(const DesignInputs &inputs)
{
    DesignResult res;
    res.inputs = inputs;

    if (inputs.cells < kMinCells || inputs.cells > kMaxCells) {
        res.infeasibleReason = "cell count out of range";
        return res;
    }
    if (inputs.capacityMah <= 0.0 || inputs.twr < 1.0 ||
        inputs.wheelbaseMm <= 0.0) {
        res.infeasibleReason = "invalid capacity, TWR, or wheelbase";
        return res;
    }

    const double prop_in = inputs.propDiameterIn > 0.0
                               ? inputs.propDiameterIn
                               : maxPropDiameterIn(inputs.wheelbaseMm);
    const double voltage = inputs.cells * kLipoCellVoltage;

    // Weight components independent of the thrust requirement.
    res.frameWeightG = frameWeightG(inputs.wheelbaseMm);
    res.batteryWeightG = batteryWeightG(inputs.cells, inputs.capacityMah);
    res.propSetWeightG = propellerSetWeightG(prop_in);
    res.wiringWeightG = wiringWeightG(res.frameWeightG);
    const double fixed_weight =
        res.frameWeightG + res.batteryWeightG + res.propSetWeightG +
        res.wiringWeightG + inputs.compute.weightG + inputs.sensorWeightG +
        inputs.payloadG;

    // Equation 1/2 fixed point: motor and ESC weights depend on the
    // thrust requirement, which depends on total weight.
    double total = fixed_weight;
    MotorRecord motor;
    double esc_w = 0.0;
    bool converged = false;
    for (int iter = 0; iter < 60; ++iter) {
        const double thrust_per_motor = inputs.twr * total / 4.0;
        motor = matchMotor(thrust_per_motor, prop_in, voltage);
        esc_w = escSetWeightG(motor.maxCurrentA, inputs.escClass);
        const double new_total = fixed_weight + 4.0 * motor.weightG + esc_w;
        if (std::fabs(new_total - total) < 0.01) {
            total = new_total;
            converged = true;
            break;
        }
        total = new_total;
        if (total > 1.0e6)
            break;
    }
    if (!converged) {
        res.infeasibleReason = "weight closure diverged";
        return res;
    }

    res.totalWeightG = total;
    res.motor = motor;
    res.motorMaxCurrentA = motor.maxCurrentA;
    res.motorSetWeightG = 4.0 * motor.weightG;
    res.escSetWeightG = esc_w;
    res.basicWeightG = total - res.batteryWeightG - res.motorSetWeightG -
                       res.escSetWeightG;
    res.extremeKv = motor.kv > kExtremeKvThreshold;

    // Equation 3: average power from the flying load fraction.
    const double load = flyingLoadFraction(inputs.activity);
    res.maxPowerW = 4.0 * motor.maxCurrentA * voltage;
    res.propulsionPowerW = res.maxPowerW * load;
    res.computePowerW = inputs.compute.powerW;
    res.sensorPowerW = inputs.sensorPowerW;
    res.avgPowerW =
        res.propulsionPowerW + res.computePowerW + res.sensorPowerW;

    // Equation 4: usable energy.
    res.usableEnergyWh = usableEnergyWh(inputs.capacityMah, voltage);

    // Equation 5: flight time.
    res.flightTimeMin = wattHoursToMinutes(res.usableEnergyWh,
                                           res.avgPowerW);

    // Equation 6: computation footprint.
    res.computePowerFraction = res.computePowerW / res.avgPowerW;

    // Sanity: the battery must be able to deliver the max current.
    const double max_current_needed = 4.0 * motor.maxCurrentA;
    const double capacity_ah = inputs.capacityMah / 1000.0;
    // High-C packs reach ~80C continuous; beyond that no pack of
    // this capacity can feed the motors.
    if (capacity_ah * 80.0 < max_current_needed) {
        res.infeasibleReason = "battery C-rating cannot supply max draw";
        return res;
    }

    res.feasible = true;
    return res;
}

} // namespace dronedse
