#include "dse/weight_closure.hh"

#include <cmath>

#include "components/battery.hh"
#include "components/frame.hh"
#include "components/propeller.hh"
#include "physics/lipo.hh"
#include "physics/propeller_aero.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

Quantity<Grams>
wiringWeightG(Quantity<Grams> frame_weight)
{
    return Quantity<Grams>(20.0) + 0.15 * frame_weight;
}

DesignResult
solveDesign(const DesignInputs &inputs)
{
    DesignResult res;
    res.inputs = inputs;

    if (inputs.cells < kMinCells || inputs.cells > kMaxCells) {
        res.infeasibleReason = "cell count out of range";
        return res;
    }
    if (inputs.capacityMah.value() <= 0.0 || inputs.twr < 1.0 ||
        inputs.wheelbaseMm.value() <= 0.0) {
        res.infeasibleReason = "invalid capacity, TWR, or wheelbase";
        return res;
    }

    const Quantity<Inches> prop = inputs.propDiameterIn.value() > 0.0
                                      ? inputs.propDiameterIn
                                      : maxPropDiameterIn(inputs.wheelbaseMm);
    const Quantity<Volts> voltage = lipoPackVoltage(inputs.cells);

    // Weight components independent of the thrust requirement.
    res.frameWeightG = frameWeightG(inputs.wheelbaseMm);
    res.batteryWeightG = batteryWeightG(inputs.cells, inputs.capacityMah);
    res.propSetWeightG = propellerSetWeightG(prop);
    res.wiringWeightG = wiringWeightG(res.frameWeightG);
    const Quantity<Grams> fixed_weight =
        res.frameWeightG + res.batteryWeightG + res.propSetWeightG +
        res.wiringWeightG + Quantity<Grams>(inputs.compute.weightG) +
        inputs.sensorWeightG + inputs.payloadG;

    // Equation 1/2 fixed point: motor and ESC weights depend on the
    // thrust requirement, which depends on total weight.
    Quantity<Grams> total = fixed_weight;
    MotorRecord motor;
    Quantity<Grams> esc_w{};
    bool converged = false;
    for (int iter = 0; iter < 60; ++iter) {
        const Quantity<GramsForce> thrust_per_motor =
            weightForce(total) * (inputs.twr / 4.0);
        motor = matchMotor(thrust_per_motor, prop, voltage);
        esc_w = escSetWeightG(motor.maxCurrent(), inputs.escClass);
        const Quantity<Grams> new_total =
            fixed_weight + 4.0 * motor.weight() + esc_w;
        if (std::fabs((new_total - total).value()) < 0.01) {
            total = new_total;
            converged = true;
            break;
        }
        total = new_total;
        if (total.value() > 1.0e6)
            break;
    }
    if (!converged) {
        res.infeasibleReason = "weight closure diverged";
        return res;
    }

    res.totalWeightG = total;
    res.motor = motor;
    res.motorMaxCurrentA = motor.maxCurrent();
    res.motorSetWeightG = 4.0 * motor.weight();
    res.escSetWeightG = esc_w;
    res.basicWeightG = total - res.batteryWeightG - res.motorSetWeightG -
                       res.escSetWeightG;
    res.extremeKv = motor.kv > kExtremeKvThreshold;

    // Equation 3: average power from the flying load fraction.
    const double load = flyingLoadFraction(inputs.activity);
    res.maxPowerW = 4.0 * (motor.maxCurrent() * voltage);
    res.propulsionPowerW = res.maxPowerW * load;
    res.computePowerW = Quantity<Watts>(inputs.compute.powerW);
    res.sensorPowerW = inputs.sensorPowerW;
    res.avgPowerW =
        res.propulsionPowerW + res.computePowerW + res.sensorPowerW;

    // Equation 4: usable energy.
    res.usableEnergyWh = usableEnergyWh(inputs.capacityMah, voltage);

    // Equation 5: flight time.
    res.flightTimeMin = wattHoursToMinutes(res.usableEnergyWh,
                                           res.avgPowerW);

    // Equation 6: computation footprint.
    res.computePowerFraction = res.computePowerW / res.avgPowerW;

    // Sanity: the battery must be able to deliver the max current.
    const Quantity<Amperes> max_current_needed = 4.0 * motor.maxCurrent();
    // High-C packs reach ~80C continuous; beyond that no pack of
    // this capacity can feed the motors.
    const Quantity<Amperes> pack_limit =
        (inputs.capacityMah * 80.0 / Quantity<Hours>(1.0)).to<Amperes>();
    if (pack_limit < max_current_needed) {
        res.infeasibleReason = "battery C-rating cannot supply max draw";
        return res;
    }

    res.feasible = true;
    return res;
}

} // namespace dronedse
