/**
 * @file
 * Inputs and outputs of one drone design-space point.
 *
 * A design point fixes the free variables of the paper's model
 * (wheelbase, battery configuration, compute board, TWR, activity)
 * and the solver (Equations 1-7, Section 3.2) resolves the coupled
 * weight/power/flight-time quantities.  Every dimensioned field is a
 * `Quantity`, so mixing up grams, watts, mAh, and minutes between
 * equations is a compile error; use `.value()` only at the CSV /
 * export boundary.
 */

#ifndef DRONEDSE_DSE_DESIGN_POINT_HH
#define DRONEDSE_DSE_DESIGN_POINT_HH

#include <string>

#include "components/compute_board.hh"
#include "components/esc.hh"
#include "components/motor.hh"
#include "physics/loads.hh"
#include "util/quantity.hh"

namespace dronedse {

/** Free variables of a design point. */
struct DesignInputs
{
    /** Frame wheelbase; fixes frame weight and max propeller. */
    Quantity<Millimeters> wheelbaseMm{450.0};
    /** LiPo series cell count (1-6). */
    int cells = 3;
    /** Battery capacity. */
    Quantity<MilliampHours> capacityMah{3000.0};
    /**
     * Target thrust-to-weight ratio.  The paper uses the minimum
     * flyable value of 2 to bound the computation power contribution
     * from above (Table 3).
     */
    double twr = 2.0;
    /**
     * Propeller diameter; 0 selects the largest the wheelbase allows
     * (the paper's procedure).
     */
    Quantity<Inches> propDiameterIn{0.0};
    /** ESC market segment (long-flight unless studying racers). */
    EscClass escClass = EscClass::LongFlight;
    /** Compute board (weight and power). */
    ComputeBoardRecord compute{"Basic 3W chip", BoardClass::Basic, 20.0,
                               3.0};
    /** External sensor weight carried. */
    Quantity<Grams> sensorWeightG{};
    /** External sensor power drawn from the main pack. */
    Quantity<Watts> sensorPowerW{};
    /** Additional payload. */
    Quantity<Grams> payloadG{};
    /** Activity regime for the average-power equation. */
    FlightActivity activity = FlightActivity::Hovering;
};

/** Resolved quantities of a design point (Equations 1-7). */
struct DesignResult
{
    /** False when the closure failed (e.g. runaway weight). */
    bool feasible = false;
    /** Human-readable reason when infeasible. */
    std::string infeasibleReason;

    /** Echo of the inputs that produced this result. */
    DesignInputs inputs;

    // -- Equation 1: weight closure --------------------------------
    /** All-up weight. */
    Quantity<Grams> totalWeightG{};
    /**
     * Basic weight: total minus battery, ESCs, and motors
     * (the Figure 9 definition).
     */
    Quantity<Grams> basicWeightG{};
    Quantity<Grams> frameWeightG{};
    Quantity<Grams> batteryWeightG{};
    Quantity<Grams> motorSetWeightG{};
    Quantity<Grams> escSetWeightG{};
    Quantity<Grams> propSetWeightG{};
    Quantity<Grams> wiringWeightG{};

    // -- Equation 2: motor matching --------------------------------
    /** Matched motor (Kv, weight, max current). */
    MotorRecord motor;
    /** Max continuous current per motor. */
    Quantity<Amperes> motorMaxCurrentA{};
    /** Flag for the Figure 9/10 "extremely high Kv" region. */
    bool extremeKv = false;

    // -- Equations 3-4: power and energy ---------------------------
    /** Max electrical propulsion power, 4 * I_max * V. */
    Quantity<Watts> maxPowerW{};
    /** Propulsion power at the activity's flying load. */
    Quantity<Watts> propulsionPowerW{};
    /** Compute board power. */
    Quantity<Watts> computePowerW{};
    /** Sensor power from the main pack. */
    Quantity<Watts> sensorPowerW{};
    /** Average total power, Equation 3. */
    Quantity<Watts> avgPowerW{};
    /** Usable battery energy, Equation 4. */
    Quantity<WattHours> usableEnergyWh{};

    // -- Equations 5-6: flight time and footprint ------------------
    /** Flight time, Equation 5. */
    Quantity<Minutes> flightTimeMin{};
    /** Fraction of total power consumed by compute, Equation 6. */
    double computePowerFraction = 0.0;
};

} // namespace dronedse

#endif // DRONEDSE_DSE_DESIGN_POINT_HH
