/**
 * @file
 * Inputs and outputs of one drone design-space point.
 *
 * A design point fixes the free variables of the paper's model
 * (wheelbase, battery configuration, compute board, TWR, activity)
 * and the solver (Equations 1-7, Section 3.2) resolves the coupled
 * weight/power/flight-time quantities.
 */

#ifndef DRONEDSE_DSE_DESIGN_POINT_HH
#define DRONEDSE_DSE_DESIGN_POINT_HH

#include <string>

#include "components/compute_board.hh"
#include "components/esc.hh"
#include "components/motor.hh"
#include "physics/loads.hh"

namespace dronedse {

/** Free variables of a design point. */
struct DesignInputs
{
    /** Frame wheelbase (mm); fixes frame weight and max propeller. */
    double wheelbaseMm = 450.0;
    /** LiPo series cell count (1-6). */
    int cells = 3;
    /** Battery capacity (mAh). */
    double capacityMah = 3000.0;
    /**
     * Target thrust-to-weight ratio.  The paper uses the minimum
     * flyable value of 2 to bound the computation power contribution
     * from above (Table 3).
     */
    double twr = 2.0;
    /**
     * Propeller diameter (inches); 0 selects the largest the
     * wheelbase allows (the paper's procedure).
     */
    double propDiameterIn = 0.0;
    /** ESC market segment (long-flight unless studying racers). */
    EscClass escClass = EscClass::LongFlight;
    /** Compute board (weight and power). */
    ComputeBoardRecord compute{"Basic 3W chip", BoardClass::Basic, 20.0,
                               3.0};
    /** External sensor weight carried (g). */
    double sensorWeightG = 0.0;
    /** External sensor power drawn from the main pack (W). */
    double sensorPowerW = 0.0;
    /** Additional payload (g). */
    double payloadG = 0.0;
    /** Activity regime for the average-power equation. */
    FlightActivity activity = FlightActivity::Hovering;
};

/** Resolved quantities of a design point (Equations 1-7). */
struct DesignResult
{
    /** False when the closure failed (e.g. runaway weight). */
    bool feasible = false;
    /** Human-readable reason when infeasible. */
    std::string infeasibleReason;

    /** Echo of the inputs that produced this result. */
    DesignInputs inputs;

    // -- Equation 1: weight closure --------------------------------
    /** All-up weight (g). */
    double totalWeightG = 0.0;
    /**
     * Basic weight (g): total minus battery, ESCs, and motors
     * (the Figure 9 definition).
     */
    double basicWeightG = 0.0;
    double frameWeightG = 0.0;
    double batteryWeightG = 0.0;
    double motorSetWeightG = 0.0;
    double escSetWeightG = 0.0;
    double propSetWeightG = 0.0;
    double wiringWeightG = 0.0;

    // -- Equation 2: motor matching --------------------------------
    /** Matched motor (Kv, weight, max current). */
    MotorRecord motor;
    /** Max continuous current per motor (A). */
    double motorMaxCurrentA = 0.0;
    /** Flag for the Figure 9/10 "extremely high Kv" region. */
    bool extremeKv = false;

    // -- Equations 3-4: power and energy ---------------------------
    /** Max electrical propulsion power, 4 * I_max * V (W). */
    double maxPowerW = 0.0;
    /** Propulsion power at the activity's flying load (W). */
    double propulsionPowerW = 0.0;
    /** Compute board power (W). */
    double computePowerW = 0.0;
    /** Sensor power from the main pack (W). */
    double sensorPowerW = 0.0;
    /** Average total power (W), Equation 3. */
    double avgPowerW = 0.0;
    /** Usable battery energy (Wh), Equation 4. */
    double usableEnergyWh = 0.0;

    // -- Equations 5-6: flight time and footprint ------------------
    /** Flight time (min), Equation 5. */
    double flightTimeMin = 0.0;
    /** Fraction of total power consumed by compute, Equation 6. */
    double computePowerFraction = 0.0;
};

} // namespace dronedse

#endif // DRONEDSE_DSE_DESIGN_POINT_HH
