/**
 * @file
 * Structure-of-arrays batch evaluation of the design-point solver.
 *
 * `solveDesign` resolves one design at a time: the Equations 1-2
 * weight closure iterates motor matching to a fixed point, and every
 * iteration of the scalar path re-derives the matched motor record —
 * including its heap-allocated name string — just to read four
 * doubles out of it.  Sweeps solve thousands of independent designs,
 * so the batch kernel turns the loop inside out: designs are laid
 * out in structure-of-arrays form across a lane-width block, the
 * fixed-point iteration becomes the *outer* loop, and the inner loop
 * walks the lanes with plain double arithmetic the compiler can
 * auto-vectorize.  Converged, diverged, and invalid lanes drop out
 * of the iteration via a per-lane active mask; the motor record (and
 * its string) is materialized once per design, after convergence.
 *
 * Bit-exactness contract: for every input, the batch result is
 * byte-identical to `solveDesign` — same doubles, same strings, same
 * feasibility verdicts.  The kernel replays the scalar path's exact
 * IEEE operation sequence (same association, divisions kept as
 * divisions, conversion factors taken from the same `Quantity`
 * machinery), which is bit-preserving because the build never
 * enables -ffast-math or FMA contraction.  The scalar solver stays
 * untouched as the oracle; `tests/dse/test_batch_differential.cc`
 * holds the two paths together over reference grids, random clouds,
 * and bisected feasibility boundaries (DESIGN.md §15).
 */

#ifndef DRONEDSE_DSE_BATCH_SOLVE_HH
#define DRONEDSE_DSE_BATCH_SOLVE_HH

#include <cstddef>
#include <span>
#include <vector>

#include "dse/design_point.hh"

namespace dronedse {

/**
 * Designs iterated together per block.  Eight doubles fill two AVX2
 * registers (or four SSE2 ones); the mask bookkeeping is amortized
 * across the block either way, and the value is deliberately *not*
 * part of the results contract — any blocking of the same inputs
 * produces identical bytes (asserted by the partitioning property
 * tests).
 */
inline constexpr std::size_t kBatchLaneWidth = 8;

/**
 * Solve `inputs.size()` independent design points into `results`
 * (spans must be equal length; `results[i]` corresponds to
 * `inputs[i]`).  Byte-identical to calling `solveDesign` on each
 * element; see the file comment for the contract.
 */
void solveDesignBatch(std::span<const DesignInputs> inputs,
                      std::span<DesignResult> results);

/** Convenience overload returning a freshly allocated vector. */
std::vector<DesignResult>
solveDesignBatch(std::span<const DesignInputs> inputs);

} // namespace dronedse

#endif // DRONEDSE_DSE_BATCH_SOLVE_HH
