#include "dse/sweep.hh"

#include <cmath>
#include <utility>

#include "components/battery.hh"
#include "components/esc.hh"
#include "dse/weight_closure.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

using namespace unit_literals;

const SizeClassSpec &
classSpec(SizeClass size_class)
{
    static const SizeClassSpec small{
        SizeClass::Small, "100mm (small consumer)", 200.0_mm, 5.0_in,
        500.0_mah, 4500.0_mah, 200.0_g, 1700.0_g, 23.0_min};
    static const SizeClassSpec medium{
        SizeClass::Medium, "450mm", 450.0_mm, 10.0_in,
        1000.0_mah, 8000.0_mah, 400.0_g, 2000.0_g, 19.0_min};
    static const SizeClassSpec large{
        SizeClass::Large, "800mm", 800.0_mm, 20.0_in,
        1000.0_mah, 8000.0_mah, 1200.0_g, 3200.0_g, 22.0_min};

    switch (size_class) {
      case SizeClass::Small:
        return small;
      case SizeClass::Medium:
        return medium;
      case SizeClass::Large:
        return large;
    }
    panic("classSpec: unreachable size class");
}

namespace {

/** Capacity axis values, accumulated exactly like the serial loop. */
std::vector<Quantity<MilliampHours>>
capacityAxis(const SweepSpec &spec)
{
    std::vector<Quantity<MilliampHours>> out;
    for (Quantity<MilliampHours> cap = spec.capacityLoMah;
         cap <= spec.capacityHiMah + Quantity<MilliampHours>(1e-9);
         cap += spec.capacityStepMah) {
        out.push_back(cap);
    }
    return out;
}

} // namespace

std::size_t
SweepSpec::pointCount() const
{
    std::size_t caps = 0;
    for (Quantity<MilliampHours> cap = capacityLoMah;
         cap <= capacityHiMah + Quantity<MilliampHours>(1e-9);
         cap += capacityStepMah) {
        ++caps;
    }
    return airframes.size() * boards.size() * activities.size() *
           cells.size() * caps;
}

SweepSpec
classSweepSpec(const SizeClassSpec &spec, std::vector<int> cells,
               Quantity<MilliampHours> step,
               const ComputeBoardRecord &compute,
               FlightActivity activity, double twr)
{
    SweepSpec out;
    out.airframes = {{spec.wheelbaseMm, spec.propDiameterIn}};
    out.boards = {compute};
    out.activities = {activity};
    out.cells = std::move(cells);
    out.capacityLoMah = spec.capacityLoMah;
    out.capacityHiMah = spec.capacityHiMah;
    out.capacityStepMah = step;
    out.twr = twr;
    return out;
}

std::vector<DesignInputs>
expandGrid(const SweepSpec &spec)
{
    if (spec.capacityStepMah.value() <= 0.0)
        fatal("expandGrid: capacity step must be positive");
    if (spec.airframes.empty() || spec.boards.empty() ||
        spec.activities.empty() || spec.cells.empty()) {
        fatal("expandGrid: every axis needs at least one value");
    }

    const auto caps = capacityAxis(spec);
    std::vector<DesignInputs> out;
    out.reserve(spec.airframes.size() * spec.boards.size() *
                spec.activities.size() * spec.cells.size() *
                caps.size());
    for (const auto &airframe : spec.airframes) {
        for (const auto &board : spec.boards) {
            for (FlightActivity activity : spec.activities) {
                for (int cells : spec.cells) {
                    for (Quantity<MilliampHours> cap : caps) {
                        DesignInputs in;
                        in.wheelbaseMm = airframe.wheelbaseMm;
                        in.propDiameterIn = airframe.propDiameterIn;
                        in.cells = cells;
                        in.capacityMah = cap;
                        in.twr = spec.twr;
                        in.escClass = spec.escClass;
                        in.compute = board;
                        in.sensorWeightG = spec.sensorWeightG;
                        in.sensorPowerW = spec.sensorPowerW;
                        in.payloadG = spec.payloadG;
                        in.activity = activity;
                        out.push_back(std::move(in));
                    }
                }
            }
        }
    }
    return out;
}

std::vector<DesignResult>
runSweepSerial(const SweepSpec &spec)
{
    std::vector<DesignResult> out;
    const auto grid = expandGrid(spec);
    out.reserve(grid.size());
    for (const auto &in : grid)
        out.push_back(solveDesign(in));
    return out;
}

std::vector<DesignResult>
sweepCapacity(const SizeClassSpec &spec, int cells,
              Quantity<MilliampHours> step,
              const ComputeBoardRecord &compute, FlightActivity activity,
              double twr)
{
    if (step.value() <= 0.0)
        fatal("sweepCapacity: step must be positive");

    const auto solved = runSweepSerial(
        classSweepSpec(spec, {cells}, step, compute, activity, twr));
    std::vector<DesignResult> out;
    for (const auto &res : solved) {
        if (res.feasible)
            out.push_back(res);
    }
    return out;
}

bool
withinPracticalLimits(const DesignResult &result,
                      const SizeClassSpec &spec)
{
    if (!result.feasible)
        return false;
    if (result.totalWeightG > spec.weightAxisHiG)
        return false;
    return result.batteryWeightG <=
           kMaxBatteryMassFraction * result.totalWeightG;
}

DesignResult
bestConfiguration(const SizeClassSpec &spec,
                  const ComputeBoardRecord &compute,
                  Quantity<MilliampHours> step, double twr)
{
    DesignResult best;
    for (int cells = kMinCells; cells <= kMaxCells; ++cells) {
        const auto series = sweepCapacity(spec, cells, step, compute,
                                          FlightActivity::Hovering, twr);
        for (const auto &res : series) {
            // Stay within the class's practical envelope so a 100 mm
            // "best" is not a 5 kg battery-dominated outlier.
            if (!withinPracticalLimits(res, spec))
                continue;
            if (!best.feasible ||
                res.flightTimeMin > best.flightTimeMin) {
                best = res;
            }
        }
    }
    if (!best.feasible)
        fatal("bestConfiguration: no feasible design in class sweep");
    return best;
}

std::vector<MotorCurrentPoint>
motorCurrentCurve(Quantity<Inches> prop_diameter, int cells,
                  Quantity<Grams> basic_lo, Quantity<Grams> basic_hi,
                  Quantity<Grams> step, double twr)
{
    if (step.value() <= 0.0 || basic_hi < basic_lo)
        fatal("motorCurrentCurve: invalid weight range");

    const Quantity<Volts> voltage = lipoPackVoltage(cells);
    std::vector<MotorCurrentPoint> out;
    for (Quantity<Grams> basic = basic_lo;
         basic <= basic_hi + Quantity<Grams>(1e-9); basic += step) {
        // Closure over motor and ESC mass only (battery excluded,
        // per the figure's basic-weight definition).
        Quantity<Grams> total = basic;
        MotorRecord motor;
        bool converged = false;
        for (int iter = 0; iter < 60; ++iter) {
            const Quantity<GramsForce> thrust =
                weightForce(total) * (twr / 4.0);
            motor = matchMotor(thrust, prop_diameter, voltage);
            const Quantity<Grams> esc_w = escSetWeightG(motor.maxCurrent());
            const Quantity<Grams> new_total =
                basic + 4.0 * motor.weight() + esc_w;
            if (std::fabs((new_total - total).value()) < 0.01) {
                converged = true;
                break;
            }
            total = new_total;
        }
        if (!converged)
            continue;
        out.push_back({basic, motor.maxCurrent(), motor.kv,
                       motor.weight()});
    }
    return out;
}

} // namespace dronedse
