#include "dse/sweep.hh"

#include <cmath>

#include "components/battery.hh"
#include "components/esc.hh"
#include "dse/weight_closure.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

const SizeClassSpec &
classSpec(SizeClass size_class)
{
    static const SizeClassSpec small{
        SizeClass::Small, "100mm (small consumer)", 200.0, 5.0,
        500.0, 4500.0, 200.0, 1700.0, 23.0};
    static const SizeClassSpec medium{
        SizeClass::Medium, "450mm", 450.0, 10.0,
        1000.0, 8000.0, 400.0, 2000.0, 19.0};
    static const SizeClassSpec large{
        SizeClass::Large, "800mm", 800.0, 20.0,
        1000.0, 8000.0, 1200.0, 3200.0, 22.0};

    switch (size_class) {
      case SizeClass::Small:
        return small;
      case SizeClass::Medium:
        return medium;
      case SizeClass::Large:
        return large;
    }
    panic("classSpec: unreachable size class");
}

std::vector<DesignResult>
sweepCapacity(const SizeClassSpec &spec, int cells, double step_mah,
              const ComputeBoardRecord &compute, FlightActivity activity,
              double twr)
{
    if (step_mah <= 0.0)
        fatal("sweepCapacity: step must be positive");

    std::vector<DesignResult> out;
    for (double cap = spec.capacityLoMah; cap <= spec.capacityHiMah + 1e-9;
         cap += step_mah) {
        DesignInputs in;
        in.wheelbaseMm = spec.wheelbaseMm;
        in.propDiameterIn = spec.propDiameterIn;
        in.cells = cells;
        in.capacityMah = cap;
        in.twr = twr;
        in.compute = compute;
        in.activity = activity;
        DesignResult res = solveDesign(in);
        if (res.feasible)
            out.push_back(std::move(res));
    }
    return out;
}

bool
withinPracticalLimits(const DesignResult &result,
                      const SizeClassSpec &spec)
{
    if (!result.feasible)
        return false;
    if (result.totalWeightG > spec.weightAxisHiG)
        return false;
    return result.batteryWeightG <=
           kMaxBatteryMassFraction * result.totalWeightG;
}

DesignResult
bestConfiguration(const SizeClassSpec &spec,
                  const ComputeBoardRecord &compute, double step_mah,
                  double twr)
{
    DesignResult best;
    for (int cells = kMinCells; cells <= kMaxCells; ++cells) {
        const auto series = sweepCapacity(spec, cells, step_mah, compute,
                                          FlightActivity::Hovering, twr);
        for (const auto &res : series) {
            // Stay within the class's practical envelope so a 100 mm
            // "best" is not a 5 kg battery-dominated outlier.
            if (!withinPracticalLimits(res, spec))
                continue;
            if (!best.feasible ||
                res.flightTimeMin > best.flightTimeMin) {
                best = res;
            }
        }
    }
    if (!best.feasible)
        fatal("bestConfiguration: no feasible design in class sweep");
    return best;
}

std::vector<MotorCurrentPoint>
motorCurrentCurve(double prop_diameter_in, int cells, double basic_lo_g,
                  double basic_hi_g, double step_g, double twr)
{
    if (step_g <= 0.0 || basic_hi_g < basic_lo_g)
        fatal("motorCurrentCurve: invalid weight range");

    const double voltage = cells * kLipoCellVoltage;
    std::vector<MotorCurrentPoint> out;
    for (double basic = basic_lo_g; basic <= basic_hi_g + 1e-9;
         basic += step_g) {
        // Closure over motor and ESC mass only (battery excluded,
        // per the figure's basic-weight definition).
        double total = basic;
        MotorRecord motor;
        bool converged = false;
        for (int iter = 0; iter < 60; ++iter) {
            const double thrust = twr * total / 4.0;
            motor = matchMotor(thrust, prop_diameter_in, voltage);
            const double esc_w = escSetWeightG(motor.maxCurrentA);
            const double new_total = basic + 4.0 * motor.weightG + esc_w;
            if (std::fabs(new_total - total) < 0.01) {
                converged = true;
                break;
            }
            total = new_total;
        }
        if (!converged)
            continue;
        out.push_back({basic, motor.maxCurrentA, motor.kv, motor.weightG});
    }
    return out;
}

} // namespace dronedse
