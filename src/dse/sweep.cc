#include "dse/sweep.hh"

#include <cmath>

#include "components/battery.hh"
#include "components/esc.hh"
#include "dse/weight_closure.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

using namespace unit_literals;

const SizeClassSpec &
classSpec(SizeClass size_class)
{
    static const SizeClassSpec small{
        SizeClass::Small, "100mm (small consumer)", 200.0_mm, 5.0_in,
        500.0_mah, 4500.0_mah, 200.0_g, 1700.0_g, 23.0_min};
    static const SizeClassSpec medium{
        SizeClass::Medium, "450mm", 450.0_mm, 10.0_in,
        1000.0_mah, 8000.0_mah, 400.0_g, 2000.0_g, 19.0_min};
    static const SizeClassSpec large{
        SizeClass::Large, "800mm", 800.0_mm, 20.0_in,
        1000.0_mah, 8000.0_mah, 1200.0_g, 3200.0_g, 22.0_min};

    switch (size_class) {
      case SizeClass::Small:
        return small;
      case SizeClass::Medium:
        return medium;
      case SizeClass::Large:
        return large;
    }
    panic("classSpec: unreachable size class");
}

std::vector<DesignResult>
sweepCapacity(const SizeClassSpec &spec, int cells,
              Quantity<MilliampHours> step,
              const ComputeBoardRecord &compute, FlightActivity activity,
              double twr)
{
    if (step.value() <= 0.0)
        fatal("sweepCapacity: step must be positive");

    std::vector<DesignResult> out;
    for (Quantity<MilliampHours> cap = spec.capacityLoMah;
         cap <= spec.capacityHiMah + Quantity<MilliampHours>(1e-9);
         cap += step) {
        DesignInputs in;
        in.wheelbaseMm = spec.wheelbaseMm;
        in.propDiameterIn = spec.propDiameterIn;
        in.cells = cells;
        in.capacityMah = cap;
        in.twr = twr;
        in.compute = compute;
        in.activity = activity;
        DesignResult res = solveDesign(in);
        if (res.feasible)
            out.push_back(std::move(res));
    }
    return out;
}

bool
withinPracticalLimits(const DesignResult &result,
                      const SizeClassSpec &spec)
{
    if (!result.feasible)
        return false;
    if (result.totalWeightG > spec.weightAxisHiG)
        return false;
    return result.batteryWeightG <=
           kMaxBatteryMassFraction * result.totalWeightG;
}

DesignResult
bestConfiguration(const SizeClassSpec &spec,
                  const ComputeBoardRecord &compute,
                  Quantity<MilliampHours> step, double twr)
{
    DesignResult best;
    for (int cells = kMinCells; cells <= kMaxCells; ++cells) {
        const auto series = sweepCapacity(spec, cells, step, compute,
                                          FlightActivity::Hovering, twr);
        for (const auto &res : series) {
            // Stay within the class's practical envelope so a 100 mm
            // "best" is not a 5 kg battery-dominated outlier.
            if (!withinPracticalLimits(res, spec))
                continue;
            if (!best.feasible ||
                res.flightTimeMin > best.flightTimeMin) {
                best = res;
            }
        }
    }
    if (!best.feasible)
        fatal("bestConfiguration: no feasible design in class sweep");
    return best;
}

std::vector<MotorCurrentPoint>
motorCurrentCurve(Quantity<Inches> prop_diameter, int cells,
                  Quantity<Grams> basic_lo, Quantity<Grams> basic_hi,
                  Quantity<Grams> step, double twr)
{
    if (step.value() <= 0.0 || basic_hi < basic_lo)
        fatal("motorCurrentCurve: invalid weight range");

    const Quantity<Volts> voltage = lipoPackVoltage(cells);
    std::vector<MotorCurrentPoint> out;
    for (Quantity<Grams> basic = basic_lo;
         basic <= basic_hi + Quantity<Grams>(1e-9); basic += step) {
        // Closure over motor and ESC mass only (battery excluded,
        // per the figure's basic-weight definition).
        Quantity<Grams> total = basic;
        MotorRecord motor;
        bool converged = false;
        for (int iter = 0; iter < 60; ++iter) {
            const Quantity<GramsForce> thrust =
                weightForce(total) * (twr / 4.0);
            motor = matchMotor(thrust, prop_diameter, voltage);
            const Quantity<Grams> esc_w = escSetWeightG(motor.maxCurrent());
            const Quantity<Grams> new_total =
                basic + 4.0 * motor.weight() + esc_w;
            if (std::fabs((new_total - total).value()) < 0.01) {
                converged = true;
                break;
            }
            total = new_total;
        }
        if (!converged)
            continue;
        out.push_back({basic, motor.maxCurrent(), motor.kv,
                       motor.weight()});
    }
    return out;
}

} // namespace dronedse
