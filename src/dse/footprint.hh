/**
 * @file
 * Computation power footprint analysis (Equations 6-7, Figures 10d-f
 * and 11): what fraction of total drone power the compute system
 * consumes, and how compute power savings convert into flight time.
 */

#ifndef DRONEDSE_DSE_FOOTPRINT_HH
#define DRONEDSE_DSE_FOOTPRINT_HH

#include "dse/design_point.hh"

namespace dronedse {

/**
 * Exact flight time gained (min) by reducing average power draw by
 * `saved_power_w` watts (Equation 7): the battery energy is fixed,
 * so t_new = E / (P - dP).
 *
 * @param result        A feasible design point.
 * @param saved_power_w Power saved; may be negative (added power,
 *        e.g. a heavier platform), yielding a negative gain.
 */
double gainedFlightTimeMin(const DesignResult &result,
                           double saved_power_w);

/**
 * The paper's linearized form of Equation 7 used in Section 5.2:
 * gain ~= dP / P * t (e.g. "10/140 x 15 min").
 */
double gainedFlightTimeApproxMin(double saved_power_w,
                                 double total_power_w,
                                 double flight_time_min);

/**
 * Flight time gained (min) when a platform swap changes both power
 * and weight: the design is re-solved with the new payload so the
 * weight feedback (heavier platform -> bigger motors -> more power)
 * is captured.
 *
 * @param inputs            Baseline design inputs.
 * @param delta_power_w     Platform power change (positive = more).
 * @param delta_weight_g    Platform weight change (positive = more).
 */
double platformSwapGainMin(const DesignInputs &inputs,
                           double delta_power_w, double delta_weight_g);

/** One row of the Figure 10d-f footprint series. */
struct FootprintPoint
{
    double totalWeightG = 0.0;
    double computePowerW = 0.0;
    FlightActivity activity = FlightActivity::Hovering;
    /** Compute power as a fraction of total (Equation 6). */
    double fraction = 0.0;
    double flightTimeMin = 0.0;
};

} // namespace dronedse

#endif // DRONEDSE_DSE_FOOTPRINT_HH
