/**
 * @file
 * Computation power footprint analysis (Equations 6-7, Figures 10d-f
 * and 11): what fraction of total drone power the compute system
 * consumes, and how compute power savings convert into flight time.
 */

#ifndef DRONEDSE_DSE_FOOTPRINT_HH
#define DRONEDSE_DSE_FOOTPRINT_HH

#include "dse/design_point.hh"
#include "util/quantity.hh"

namespace dronedse {

/**
 * Exact flight time gained by reducing average power draw by
 * `saved_power` (Equation 7): the battery energy is fixed, so
 * t_new = E / (P - dP).
 *
 * @param result      A feasible design point.
 * @param saved_power Power saved; may be negative (added power,
 *        e.g. a heavier platform), yielding a negative gain.
 */
Quantity<Minutes> gainedFlightTimeMin(const DesignResult &result,
                                      Quantity<Watts> saved_power);

/**
 * The paper's linearized form of Equation 7 used in Section 5.2:
 * gain ~= dP / P * t (e.g. "10/140 x 15 min").
 */
Quantity<Minutes> gainedFlightTimeApproxMin(Quantity<Watts> saved_power,
                                            Quantity<Watts> total_power,
                                            Quantity<Minutes> flight_time);

/**
 * Flight time gained when a platform swap changes both power and
 * weight: the design is re-solved with the new payload so the
 * weight feedback (heavier platform -> bigger motors -> more power)
 * is captured.
 *
 * @param inputs        Baseline design inputs.
 * @param delta_power   Platform power change (positive = more).
 * @param delta_weight  Platform weight change (positive = more).
 */
Quantity<Minutes> platformSwapGainMin(const DesignInputs &inputs,
                                      Quantity<Watts> delta_power,
                                      Quantity<Grams> delta_weight);

/** One row of the Figure 10d-f footprint series. */
struct FootprintPoint
{
    Quantity<Grams> totalWeightG{};
    Quantity<Watts> computePowerW{};
    FlightActivity activity = FlightActivity::Hovering;
    /** Compute power as a fraction of total (Equation 6). */
    double fraction = 0.0;
    Quantity<Minutes> flightTimeMin{};
};

} // namespace dronedse

#endif // DRONEDSE_DSE_FOOTPRINT_HH
