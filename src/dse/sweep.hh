/**
 * @file
 * Design-space sweeps: the loops that generate the series in
 * Figures 9 and 10 and locate each size class's best configuration.
 */

#ifndef DRONEDSE_DSE_SWEEP_HH
#define DRONEDSE_DSE_SWEEP_HH

#include <vector>

#include "components/commercial.hh"
#include "dse/design_point.hh"

namespace dronedse {

/** Canonical parameters of one Figure 10 size class. */
struct SizeClassSpec
{
    SizeClass sizeClass = SizeClass::Medium;
    const char *label = "";
    /** Representative wheelbase. */
    Quantity<Millimeters> wheelbaseMm{450.0};
    /**
     * Propeller diameter.  For the small consumer class the paper's
     * validation points (Mavic, Spark, ...) fly folding ~5" props
     * that overlap the arms, so the class prop exceeds the strict
     * wheelbase cap; see EXPERIMENTS.md.
     */
    Quantity<Inches> propDiameterIn{10.0};
    /** Capacity sweep bounds, Section 3.2 procedure. */
    Quantity<MilliampHours> capacityLoMah{1000.0};
    Quantity<MilliampHours> capacityHiMah{8000.0};
    /** Weight axis of the corresponding Figure 10 panel. */
    Quantity<Grams> weightAxisLoG{200.0};
    Quantity<Grams> weightAxisHiG{1700.0};
    /** Paper's validated best-configuration flight time. */
    Quantity<Minutes> paperBestFlightTimeMin{23.0};
};

/** The three Figure 10 classes (small/medium/large). */
const SizeClassSpec &classSpec(SizeClass size_class);

/**
 * Practical cap on the battery's share of all-up weight.  Commercial
 * drones carry 20-35 % battery (Figure 14: 23 %; Mavic: ~33 %);
 * beyond that, C-rating margins, voltage sag, and structure make
 * designs impractical, so the best-configuration search excludes
 * them.
 */
inline constexpr double kMaxBatteryMassFraction = 0.35;

/**
 * True when a design is inside the class's practical envelope:
 * within the weight axis and under the battery-mass-fraction cap.
 */
bool withinPracticalLimits(const DesignResult &result,
                           const SizeClassSpec &spec);

/**
 * Sweep battery capacity for one class and cell count, solving each
 * design point (the Figure 10a-c series for one battery family).
 *
 * Infeasible points are omitted.
 */
std::vector<DesignResult>
sweepCapacity(const SizeClassSpec &spec, int cells,
              Quantity<MilliampHours> step,
              const ComputeBoardRecord &compute,
              FlightActivity activity = FlightActivity::Hovering,
              double twr = 2.0);

/**
 * Best configuration of a class: the max-flight-time design over
 * cell counts {1..6} and the class's capacity range.
 */
DesignResult bestConfiguration(
    const SizeClassSpec &spec, const ComputeBoardRecord &compute,
    Quantity<MilliampHours> step = Quantity<MilliampHours>(250.0),
    double twr = 2.0);

/** One point of a Figure 9 series. */
struct MotorCurrentPoint
{
    /** Basic weight: no battery, ESCs, or motors. */
    Quantity<Grams> basicWeightG{};
    /** Minimum required max current draw per motor. */
    Quantity<Amperes> motorCurrentA{};
    /** Kv rating of the matched motor. */
    double kv = 0.0;
    /** Matched motor weight. */
    Quantity<Grams> motorWeightG{};
};

/**
 * The Figure 9 relationship: per-motor max current vs basic weight
 * for a given propeller and supply voltage at a target TWR.
 *
 * Basic weight excludes battery, ESCs, and motors (the figure's
 * definition); the closure adds motor and ESC mass back before
 * computing the thrust requirement.
 */
std::vector<MotorCurrentPoint>
motorCurrentCurve(Quantity<Inches> prop_diameter, int cells,
                  Quantity<Grams> basic_lo, Quantity<Grams> basic_hi,
                  Quantity<Grams> step, double twr = 2.0);

} // namespace dronedse

#endif // DRONEDSE_DSE_SWEEP_HH
