/**
 * @file
 * Design-space sweeps: the grid descriptions and serial reference
 * loops that generate the series in Figures 9 and 10 and locate each
 * size class's best configuration.
 *
 * `SweepSpec` is the shared grid vocabulary: it names the axes of a
 * sweep (airframe x board x activity x cells x capacity) and expands
 * to a deterministic, ordered list of `DesignInputs`.  The serial
 * loops here and the parallel `engine::SweepEngine` both consume the
 * same expansion, which is what makes the parallel results
 * bit-identical to the serial reference.
 */

#ifndef DRONEDSE_DSE_SWEEP_HH
#define DRONEDSE_DSE_SWEEP_HH

#include <vector>

#include "components/commercial.hh"
#include "dse/design_point.hh"

namespace dronedse {

/** Canonical parameters of one Figure 10 size class. */
struct SizeClassSpec
{
    SizeClass sizeClass = SizeClass::Medium;
    const char *label = "";
    /** Representative wheelbase. */
    Quantity<Millimeters> wheelbaseMm{450.0};
    /**
     * Propeller diameter.  For the small consumer class the paper's
     * validation points (Mavic, Spark, ...) fly folding ~5" props
     * that overlap the arms, so the class prop exceeds the strict
     * wheelbase cap; see EXPERIMENTS.md.
     */
    Quantity<Inches> propDiameterIn{10.0};
    /** Capacity sweep bounds, Section 3.2 procedure. */
    Quantity<MilliampHours> capacityLoMah{1000.0};
    Quantity<MilliampHours> capacityHiMah{8000.0};
    /** Weight axis of the corresponding Figure 10 panel. */
    Quantity<Grams> weightAxisLoG{200.0};
    Quantity<Grams> weightAxisHiG{1700.0};
    /** Paper's validated best-configuration flight time. */
    Quantity<Minutes> paperBestFlightTimeMin{23.0};
};

/** The three Figure 10 classes (small/medium/large). */
const SizeClassSpec &classSpec(SizeClass size_class);

/**
 * Practical cap on the battery's share of all-up weight.  Commercial
 * drones carry 20-35 % battery (Figure 14: 23 %; Mavic: ~33 %);
 * beyond that, C-rating margins, voltage sag, and structure make
 * designs impractical, so the best-configuration search excludes
 * them.
 */
inline constexpr double kMaxBatteryMassFraction = 0.35;

/**
 * True when a design is inside the class's practical envelope:
 * within the weight axis and under the battery-mass-fraction cap.
 */
bool withinPracticalLimits(const DesignResult &result,
                           const SizeClassSpec &spec);

/** One airframe of a sweep grid: a wheelbase plus its propeller. */
struct SweepAirframe
{
    Quantity<Millimeters> wheelbaseMm{450.0};
    /** 0 selects the largest the wheelbase allows. */
    Quantity<Inches> propDiameterIn{0.0};
};

/**
 * Declarative description of a design-space grid: the cross product
 * airframe x board x activity x cells x capacity, plus the shared
 * scalar inputs (TWR, ESC class, sensors, payload).
 *
 * Expansion order is fixed (capacity innermost) so every consumer —
 * the serial loops below, the parallel engine, and the CSV exporters
 * — sees the identical point sequence.
 */
struct SweepSpec
{
    std::vector<SweepAirframe> airframes{SweepAirframe{}};
    std::vector<ComputeBoardRecord> boards;
    std::vector<FlightActivity> activities{FlightActivity::Hovering};
    std::vector<int> cells{3};
    Quantity<MilliampHours> capacityLoMah{1000.0};
    Quantity<MilliampHours> capacityHiMah{8000.0};
    Quantity<MilliampHours> capacityStepMah{250.0};
    double twr = 2.0;
    EscClass escClass = EscClass::LongFlight;
    Quantity<Grams> sensorWeightG{};
    Quantity<Watts> sensorPowerW{};
    Quantity<Grams> payloadG{};

    /** Number of grid points the spec expands to. */
    std::size_t pointCount() const;
};

/**
 * The shared Figure 10/11 builder: one size class's capacity grid
 * for a set of battery families on one board and activity.  Both
 * figure benches and the engine-backed best-configuration search
 * route through this so the size-class loop bodies exist once.
 */
SweepSpec classSweepSpec(const SizeClassSpec &spec,
                         std::vector<int> cells,
                         Quantity<MilliampHours> step,
                         const ComputeBoardRecord &compute,
                         FlightActivity activity = FlightActivity::Hovering,
                         double twr = 2.0);

/**
 * Expand a spec to its ordered list of design points (airframe, then
 * board, then activity, then cells, with capacity innermost).  The
 * capacity axis accumulates `lo + step + step + ...` exactly as the
 * original serial loop did, so expansion reproduces the historical
 * floating-point grid bit-for-bit.
 */
std::vector<DesignInputs> expandGrid(const SweepSpec &spec);

/**
 * Serial reference execution of a spec: `solveDesign` over
 * `expandGrid` in order.  The engine's determinism contract is
 * defined against this function's output.
 */
std::vector<DesignResult> runSweepSerial(const SweepSpec &spec);

/**
 * Sweep battery capacity for one class and cell count, solving each
 * design point (the Figure 10a-c series for one battery family).
 *
 * Infeasible points are omitted.
 */
std::vector<DesignResult>
sweepCapacity(const SizeClassSpec &spec, int cells,
              Quantity<MilliampHours> step,
              const ComputeBoardRecord &compute,
              FlightActivity activity = FlightActivity::Hovering,
              double twr = 2.0);

/**
 * Best configuration of a class: the max-flight-time design over
 * cell counts {1..6} and the class's capacity range.
 */
DesignResult bestConfiguration(
    const SizeClassSpec &spec, const ComputeBoardRecord &compute,
    Quantity<MilliampHours> step = Quantity<MilliampHours>(250.0),
    double twr = 2.0);

/** One point of a Figure 9 series. */
struct MotorCurrentPoint
{
    /** Basic weight: no battery, ESCs, or motors. */
    Quantity<Grams> basicWeightG{};
    /** Minimum required max current draw per motor. */
    Quantity<Amperes> motorCurrentA{};
    /** Kv rating of the matched motor. */
    double kv = 0.0;
    /** Matched motor weight. */
    Quantity<Grams> motorWeightG{};
};

/**
 * The Figure 9 relationship: per-motor max current vs basic weight
 * for a given propeller and supply voltage at a target TWR.
 *
 * Basic weight excludes battery, ESCs, and motors (the figure's
 * definition); the closure adds motor and ESC mass back before
 * computing the thrust requirement.
 */
std::vector<MotorCurrentPoint>
motorCurrentCurve(Quantity<Inches> prop_diameter, int cells,
                  Quantity<Grams> basic_lo, Quantity<Grams> basic_hi,
                  Quantity<Grams> step, double twr = 2.0);

} // namespace dronedse

#endif // DRONEDSE_DSE_SWEEP_HH
