/**
 * @file
 * CSV export of design-space sweeps — the repo-side equivalent of
 * the paper artifact's raw figure data (/Drone-CSVs).
 */

#ifndef DRONEDSE_DSE_EXPORT_HH
#define DRONEDSE_DSE_EXPORT_HH

#include <string>
#include <vector>

#include "dse/design_point.hh"
#include "dse/sweep.hh"
#include "util/csv.hh"

namespace dronedse {

/**
 * Render a solved-design series (e.g. one Figure 10 battery family)
 * as CSV: capacity, weight, power, flight time, compute share.
 */
CsvWriter sweepToCsv(const std::vector<DesignResult> &series);

/**
 * Render a Figure 9 motor-current curve as CSV: basic weight,
 * current, Kv, motor weight.
 */
CsvWriter motorCurveToCsv(const std::vector<MotorCurrentPoint> &curve);

} // namespace dronedse

#endif // DRONEDSE_DSE_EXPORT_HH
