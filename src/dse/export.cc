#include "dse/export.hh"

namespace dronedse {

CsvWriter
sweepToCsv(const std::vector<DesignResult> &series)
{
    CsvWriter csv({"capacity_mah", "cells", "total_weight_g",
                   "avg_power_w", "flight_time_min",
                   "compute_power_fraction", "motor_current_a",
                   "motor_kv"});
    for (const auto &res : series) {
        csv.addRow(std::vector<double>{
            res.inputs.capacityMah,
            static_cast<double>(res.inputs.cells), res.totalWeightG,
            res.avgPowerW, res.flightTimeMin,
            res.computePowerFraction, res.motorMaxCurrentA,
            res.motor.kv});
    }
    return csv;
}

CsvWriter
motorCurveToCsv(const std::vector<MotorCurrentPoint> &curve)
{
    CsvWriter csv({"basic_weight_g", "motor_current_a", "kv",
                   "motor_weight_g"});
    for (const auto &point : curve) {
        csv.addRow(std::vector<double>{point.basicWeightG,
                                       point.motorCurrentA, point.kv,
                                       point.motorWeightG});
    }
    return csv;
}

} // namespace dronedse
