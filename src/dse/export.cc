#include "dse/export.hh"

namespace dronedse {

// CSV export is the raw-`double` boundary of the typed model: every
// quantity is unwrapped with `.value()` exactly here, and the column
// headers carry the unit instead.

CsvWriter
sweepToCsv(const std::vector<DesignResult> &series)
{
    CsvWriter csv({"capacity_mah", "cells", "total_weight_g",
                   "avg_power_w", "flight_time_min",
                   "compute_power_fraction", "motor_current_a",
                   "motor_kv"});
    for (const auto &res : series) {
        csv.addRow(std::vector<double>{
            res.inputs.capacityMah.value(),
            static_cast<double>(res.inputs.cells),
            res.totalWeightG.value(), res.avgPowerW.value(),
            res.flightTimeMin.value(), res.computePowerFraction,
            res.motorMaxCurrentA.value(), res.motor.kv});
    }
    return csv;
}

CsvWriter
motorCurveToCsv(const std::vector<MotorCurrentPoint> &curve)
{
    CsvWriter csv({"basic_weight_g", "motor_current_a", "kv",
                   "motor_weight_g"});
    for (const auto &point : curve) {
        csv.addRow(std::vector<double>{point.basicWeightG.value(),
                                       point.motorCurrentA.value(),
                                       point.kv,
                                       point.motorWeightG.value()});
    }
    return csv;
}

} // namespace dronedse
