/**
 * @file
 * The design-point solver: Equations 1-6 of the paper.
 *
 * Component weights depend on the thrust requirement, which depends
 * on total weight, which includes those components — so the solver
 * iterates the weight closure to a fixed point ("if the additional
 * weights necessitate a new motor, we redo the previous steps",
 * Section 3.2), then evaluates power, energy, flight time, and the
 * computation footprint.
 */

#ifndef DRONEDSE_DSE_WEIGHT_CLOSURE_HH
#define DRONEDSE_DSE_WEIGHT_CLOSURE_HH

#include "dse/design_point.hh"

namespace dronedse {

/**
 * Kv above which the paper marks "extremely high Kv" requirements
 * (Figure 9a annotates 25000Kv for 2" props on light packs).
 */
inline constexpr double kExtremeKvThreshold = 20000.0;

/**
 * Support-hardware weight (wiring, PDB, RC receiver, mounts) as a
 * function of frame weight; anchored to the paper's 450 mm drone
 * (Figure 14: ~60 g of wiring/misc on a 272 g frame).
 */
Quantity<Grams> wiringWeightG(Quantity<Grams> frame_weight);

/**
 * Resolve a design point: close the weight loop (Equations 1-2),
 * then evaluate average power (Equation 3), usable energy
 * (Equation 4), flight time (Equation 5), and the compute power
 * fraction (Equation 6).
 *
 * Always returns; check DesignResult::feasible.
 */
DesignResult solveDesign(const DesignInputs &inputs);

} // namespace dronedse

#endif // DRONEDSE_DSE_WEIGHT_CLOSURE_HH
