#include "dse/footprint.hh"

#include "dse/weight_closure.hh"
#include "util/logging.hh"

namespace dronedse {

Quantity<Minutes>
gainedFlightTimeMin(const DesignResult &result,
                    Quantity<Watts> saved_power)
{
    if (!result.feasible)
        fatal("gainedFlightTimeMin: design point is infeasible");
    const Quantity<Watts> new_power = result.avgPowerW - saved_power;
    if (new_power.value() <= 0.0)
        fatal("gainedFlightTimeMin: savings exceed total power");
    const Quantity<Minutes> new_time =
        (result.usableEnergyWh / new_power).to<Minutes>();
    return new_time - result.flightTimeMin;
}

Quantity<Minutes>
gainedFlightTimeApproxMin(Quantity<Watts> saved_power,
                          Quantity<Watts> total_power,
                          Quantity<Minutes> flight_time)
{
    if (total_power.value() <= 0.0)
        fatal("gainedFlightTimeApproxMin: total power must be positive");
    return flight_time * (saved_power / total_power);
}

Quantity<Minutes>
platformSwapGainMin(const DesignInputs &inputs, Quantity<Watts> delta_power,
                    Quantity<Grams> delta_weight)
{
    const DesignResult base = solveDesign(inputs);
    if (!base.feasible)
        fatal("platformSwapGainMin: baseline design infeasible");

    DesignInputs swapped = inputs;
    swapped.compute.powerW += delta_power.value();
    swapped.compute.weightG += delta_weight.value();
    const DesignResult after = solveDesign(swapped);
    if (!after.feasible)
        fatal("platformSwapGainMin: swapped design infeasible");

    return after.flightTimeMin - base.flightTimeMin;
}

} // namespace dronedse
