#include "dse/footprint.hh"

#include "dse/weight_closure.hh"
#include "util/logging.hh"

namespace dronedse {

double
gainedFlightTimeMin(const DesignResult &result, double saved_power_w)
{
    if (!result.feasible)
        fatal("gainedFlightTimeMin: design point is infeasible");
    const double new_power = result.avgPowerW - saved_power_w;
    if (new_power <= 0.0)
        fatal("gainedFlightTimeMin: savings exceed total power");
    const double new_time = result.usableEnergyWh / new_power * 60.0;
    return new_time - result.flightTimeMin;
}

double
gainedFlightTimeApproxMin(double saved_power_w, double total_power_w,
                          double flight_time_min)
{
    if (total_power_w <= 0.0)
        fatal("gainedFlightTimeApproxMin: total power must be positive");
    return saved_power_w / total_power_w * flight_time_min;
}

double
platformSwapGainMin(const DesignInputs &inputs, double delta_power_w,
                    double delta_weight_g)
{
    const DesignResult base = solveDesign(inputs);
    if (!base.feasible)
        fatal("platformSwapGainMin: baseline design infeasible");

    DesignInputs swapped = inputs;
    swapped.compute.powerW += delta_power_w;
    swapped.compute.weightG += delta_weight_g;
    const DesignResult after = solveDesign(swapped);
    if (!after.feasible)
        fatal("platformSwapGainMin: swapped design infeasible");

    return after.flightTimeMin - base.flightTimeMin;
}

} // namespace dronedse
