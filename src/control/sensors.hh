/**
 * @file
 * On-board sensor models at the paper's data frequencies
 * (Table 2a): accelerometer and gyroscope at 100-200 Hz,
 * magnetometer at 10 Hz, barometer at 10-20 Hz, GPS at 1-40 Hz.
 * Each sensor samples the true simulator state with bias and
 * Gaussian noise at its own rate.
 */

#ifndef DRONEDSE_CONTROL_SENSORS_HH
#define DRONEDSE_CONTROL_SENSORS_HH

#include <optional>

#include "sim/rigid_body.hh"
#include "util/rng.hh"

namespace dronedse {

/** Rates of the on-board sensors (paper Table 2a). */
struct SensorRates
{
    double accelHz = 200.0;
    double gyroHz = 200.0;
    double magHz = 10.0;
    double baroHz = 20.0;
    double gpsHz = 10.0;
};

/** Noise densities and biases. */
struct SensorNoise
{
    double accelStd = 0.08;      // m/s^2
    double gyroStd = 0.005;      // rad/s
    double gyroBias = 0.002;     // rad/s constant bias
    double magStd = 0.02;        // rad equivalent yaw noise
    double baroStd = 0.25;       // m
    double gpsStd = 0.8;         // m horizontal
    double gpsVelStd = 0.15;     // m/s
};

/** One IMU sample (body frame). */
struct ImuSample
{
    /** Specific force: acceleration minus gravity, body frame. */
    Vec3 accel;
    Vec3 gyro;
    double timestamp = 0.0;
};

/** GPS fix: world position and velocity. */
struct GpsSample
{
    Vec3 position;
    Vec3 velocity;
    double timestamp = 0.0;
};

/** Barometric altitude. */
struct BaroSample
{
    double altitude = 0.0;
    double timestamp = 0.0;
};

/** Magnetometer-derived yaw. */
struct MagSample
{
    double yaw = 0.0;
    double timestamp = 0.0;
};

/**
 * Samples the simulator's true state at per-sensor rates.  advance()
 * is called every simulation step; each getter returns a sample only
 * when that sensor's period has elapsed.
 */
class SensorSuite
{
  public:
    SensorSuite(SensorRates rates = {}, SensorNoise noise = {},
                std::uint64_t seed = 7);

    /**
     * Advance to time `t` with the current true state and the true
     * world-frame acceleration (for the accelerometer).
     */
    void advance(double t, const RigidBodyState &truth,
                 const Vec3 &accel_world);

    /**
     * Inject a GPS outage (indoor flight, jamming, canyon): while
     * unavailable, gps() yields no fixes and the estimator must
     * coast on IMU + barometer.
     */
    void setGpsAvailable(bool available) { gpsAvailable_ = available; }

    /** True while GPS fixes are being produced. */
    bool gpsAvailable() const { return gpsAvailable_; }

    /**
     * Inject a noise spike (vibration, EMI): every sensor's noise
     * standard deviation is multiplied by `scale` until reset to 1.
     * Draw counts are unchanged, so toggling the scale mid-flight
     * does not shift the RNG stream.
     */
    void setNoiseScale(double scale);

    /** Current noise multiplier. */
    double noiseScale() const { return noiseScale_; }

    /** IMU sample if due this step. */
    std::optional<ImuSample> imu();
    /** GPS sample if due this step. */
    std::optional<GpsSample> gps();
    /** Barometer sample if due this step. */
    std::optional<BaroSample> baro();
    /** Magnetometer sample if due this step. */
    std::optional<MagSample> mag();

    /** Total samples produced per sensor (rate verification). */
    long imuCount() const { return imuCount_; }
    long gpsCount() const { return gpsCount_; }
    long baroCount() const { return baroCount_; }
    long magCount() const { return magCount_; }

  private:
    SensorRates rates_;
    SensorNoise noise_;
    Rng rng_;
    Vec3 gyroBias_;

    double now_ = 0.0;
    RigidBodyState truth_;
    Vec3 accelWorld_;

    double nextImu_ = 0.0, nextGps_ = 0.0, nextBaro_ = 0.0,
           nextMag_ = 0.0;
    bool gpsAvailable_ = true;
    double noiseScale_ = 1.0;
    long imuCount_ = 0, gpsCount_ = 0, baroCount_ = 0, magCount_ = 0;
};

} // namespace dronedse

#endif // DRONEDSE_CONTROL_SENSORS_HH
