/**
 * @file
 * Proportional-integral-derivative controller, the workhorse of the
 * hierarchical inner loop (paper Section 2.1.3C: "this layer
 * extensively uses high-performance hierarchical PID controllers").
 */

#ifndef DRONEDSE_CONTROL_PID_HH
#define DRONEDSE_CONTROL_PID_HH

namespace dronedse {

/** PID gains and limits. */
struct PidConfig
{
    double kp = 1.0;
    double ki = 0.0;
    double kd = 0.0;
    /** Symmetric output saturation (+-limit); 0 disables. */
    double outputLimit = 0.0;
    /** Symmetric integral clamp; 0 disables. */
    double integralLimit = 0.0;
};

/**
 * Discrete PID with derivative-on-measurement (avoids derivative
 * kick on setpoint steps) and conditional anti-windup.
 */
class Pid
{
  public:
    explicit Pid(PidConfig config = {});

    /**
     * One update step.
     *
     * @param setpoint     Target value.
     * @param measurement  Current value.
     * @param dt           Time since the previous update (s).
     * @return Controller output (saturated if configured).
     */
    double update(double setpoint, double measurement, double dt);

    /** Clear the integral and derivative history. */
    void reset();

    /** Accumulated integral term (for inspection/tests). */
    double integral() const { return integral_; }

  private:
    PidConfig config_;
    double integral_ = 0.0;
    double prevMeasurement_ = 0.0;
    bool hasPrev_ = false;
};

} // namespace dronedse

#endif // DRONEDSE_CONTROL_PID_HH
