/**
 * @file
 * Motor mixer: maps collective thrust and body torques to per-motor
 * thrust commands for the X-configuration layout of sim/quadrotor.
 */

#ifndef DRONEDSE_CONTROL_MIXER_HH
#define DRONEDSE_CONTROL_MIXER_HH

#include <array>

namespace dronedse {

/** Desired wrench: collective thrust plus body torques. */
struct ControlWrench
{
    /** Total thrust (N). */
    double thrustN = 0.0;
    /** Roll torque about body x (N m). */
    double tauX = 0.0;
    /** Pitch torque about body y (N m). */
    double tauY = 0.0;
    /** Yaw torque about body z (N m). */
    double tauZ = 0.0;
};

/** Mixer geometry (must match the simulated airframe). */
struct MixerConfig
{
    /** Arm length hub-to-motor (m). */
    double armLengthM = 0.225;
    /** Reaction torque per newton of thrust (m). */
    double yawTorquePerThrust = 0.016;
    /** Per-motor thrust ceiling for saturation handling (N). */
    double maxThrustPerMotorN = 5.25;
};

/**
 * Invert the wrench into four motor thrusts.  Thrust is prioritized
 * over yaw under saturation (yaw authority is reduced first), the
 * standard multirotor mixing policy.
 */
std::array<double, 4> mixWrench(const ControlWrench &wrench,
                                const MixerConfig &config);

} // namespace dronedse

#endif // DRONEDSE_CONTROL_MIXER_HH
