#include "control/sensors.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

SensorSuite::SensorSuite(SensorRates rates, SensorNoise noise,
                         std::uint64_t seed)
    : rates_(rates), noise_(noise), rng_(seed)
{
    gyroBias_ = {rng_.gaussian(0.0, noise_.gyroBias),
                 rng_.gaussian(0.0, noise_.gyroBias),
                 rng_.gaussian(0.0, noise_.gyroBias)};
}

void
SensorSuite::setNoiseScale(double scale)
{
    if (scale < 0.0)
        fatal("SensorSuite::setNoiseScale: scale must be >= 0");
    noiseScale_ = scale;
}

void
SensorSuite::advance(double t, const RigidBodyState &truth,
                     const Vec3 &accel_world)
{
    now_ = t;
    truth_ = truth;
    accelWorld_ = accel_world;
}

std::optional<ImuSample>
SensorSuite::imu()
{
    if (now_ + 1e-12 < nextImu_)
        return std::nullopt;
    nextImu_ = now_ + 1.0 / rates_.accelHz;
    ++imuCount_;

    ImuSample s;
    s.timestamp = now_;
    // Accelerometer measures specific force in the body frame:
    // f = R^T (a - g).
    const Vec3 specific_world =
        accelWorld_ - Vec3{0.0, 0.0, -kGravity};
    const Vec3 body =
        truth_.attitude.conjugate().rotate(specific_world);
    s.accel = {body.x + rng_.gaussian(0.0, noiseScale_ * noise_.accelStd),
               body.y + rng_.gaussian(0.0, noiseScale_ * noise_.accelStd),
               body.z + rng_.gaussian(0.0, noiseScale_ * noise_.accelStd)};
    s.gyro = {truth_.angularVelocity.x + gyroBias_.x +
                  rng_.gaussian(0.0, noiseScale_ * noise_.gyroStd),
              truth_.angularVelocity.y + gyroBias_.y +
                  rng_.gaussian(0.0, noiseScale_ * noise_.gyroStd),
              truth_.angularVelocity.z + gyroBias_.z +
                  rng_.gaussian(0.0, noiseScale_ * noise_.gyroStd)};
    return s;
}

std::optional<GpsSample>
SensorSuite::gps()
{
    if (!gpsAvailable_)
        return std::nullopt;
    if (now_ + 1e-12 < nextGps_)
        return std::nullopt;
    nextGps_ = now_ + 1.0 / rates_.gpsHz;
    ++gpsCount_;

    GpsSample s;
    s.timestamp = now_;
    const double pos_std = noiseScale_ * noise_.gpsStd;
    s.position = {truth_.position.x + rng_.gaussian(0.0, pos_std),
                  truth_.position.y + rng_.gaussian(0.0, pos_std),
                  truth_.position.z +
                      rng_.gaussian(0.0, 1.5 * pos_std)};
    s.velocity = {
        truth_.velocity.x + rng_.gaussian(0.0, noiseScale_ * noise_.gpsVelStd),
        truth_.velocity.y + rng_.gaussian(0.0, noiseScale_ * noise_.gpsVelStd),
        truth_.velocity.z + rng_.gaussian(0.0, noiseScale_ * noise_.gpsVelStd)};
    return s;
}

std::optional<BaroSample>
SensorSuite::baro()
{
    if (now_ + 1e-12 < nextBaro_)
        return std::nullopt;
    nextBaro_ = now_ + 1.0 / rates_.baroHz;
    ++baroCount_;

    return BaroSample{
        truth_.position.z +
            rng_.gaussian(0.0, noiseScale_ * noise_.baroStd),
        now_};
}

std::optional<MagSample>
SensorSuite::mag()
{
    if (now_ + 1e-12 < nextMag_)
        return std::nullopt;
    nextMag_ = now_ + 1.0 / rates_.magHz;
    ++magCount_;

    return MagSample{
        truth_.attitude.yaw() +
            rng_.gaussian(0.0, noiseScale_ * noise_.magStd),
        now_};
}

} // namespace dronedse
