/**
 * @file
 * State estimation for the inner loop: an extended Kalman filter
 * over position/velocity fused with a complementary attitude filter
 * — the "shared libraries" sensor-fusion layer of the paper's
 * software stack (Figure 5, Section 2.1.3D: filter computations such
 * as EKF for data fusion).
 */

#ifndef DRONEDSE_CONTROL_EKF_HH
#define DRONEDSE_CONTROL_EKF_HH

#include "control/sensors.hh"
#include "sim/rigid_body.hh"
#include "util/matrix.hh"

namespace dronedse {

/**
 * Kalman filter over x = [position(3), velocity(3)] with world-frame
 * acceleration as the control input, GPS position/velocity and
 * barometric altitude as measurements.
 */
class PositionEkf
{
  public:
    PositionEkf();

    /** Propagate by dt with world-frame acceleration. */
    void predict(const Vec3 &accel_world, double dt);

    /** Fuse a GPS position+velocity fix. */
    void updateGps(const GpsSample &sample, double pos_std,
                   double vel_std);

    /** Fuse a barometric altitude. */
    void updateBaro(const BaroSample &sample, double std);

    Vec3 position() const;
    Vec3 velocity() const;

    /** Trace of the position covariance block (uncertainty). */
    double positionUncertainty() const;

  private:
    /** Generic linear measurement update. */
    void update(const Matrix &h, const std::vector<double> &z,
                const std::vector<double> &r_diag);

    std::vector<double> x_; // [p, v]
    Matrix p_;              // 6x6 covariance
    double accelNoise_ = 0.35; // process noise (m/s^2)
};

/**
 * Complementary attitude filter: integrates the gyro and leans the
 * estimate toward the accelerometer gravity direction (roll/pitch)
 * and the magnetometer (yaw).
 */
class AttitudeFilter
{
  public:
    /**
     * @param accel_gain Tilt correction gain (1/s): the estimate
     *        leans toward the measured gravity direction with time
     *        constant 1/accel_gain.  Must stay small (fractions of
     *        a hertz) so sustained maneuvers cannot drag the
     *        estimate off the gyro.
     * @param mag_gain Yaw correction fraction per magnetometer
     *        sample.
     */
    explicit AttitudeFilter(double accel_gain = 0.4,
                            double mag_gain = 0.05);

    /** Integrate a gyro sample over dt. */
    void predict(const Vec3 &gyro, double dt);

    /**
     * Tilt correction from the accelerometer's gravity direction,
     * weighted by the sample interval dt.  Ignored unless the
     * specific-force magnitude is close to 1 g (quasi-static).
     */
    void correctAccel(const Vec3 &accel_body, double dt);

    /** Yaw correction from the magnetometer. */
    void correctMag(double yaw);

    const Quaternion &attitude() const { return q_; }

    /** Reset to a known attitude. */
    void reset(const Quaternion &q) { q_ = q; }

  private:
    Quaternion q_;
    double accelGain_;
    double magGain_;
};

/**
 * Full estimator: consumes the sensor suite's samples and maintains
 * a RigidBodyState estimate for the control cascade.
 */
class StateEstimator
{
  public:
    StateEstimator(SensorNoise noise = {});

    /** Feed an IMU sample (predict step at the IMU rate). */
    void onImu(const ImuSample &sample);
    /** Feed a GPS fix. */
    void onGps(const GpsSample &sample);
    /** Feed a barometer sample. */
    void onBaro(const BaroSample &sample);
    /** Feed a magnetometer sample. */
    void onMag(const MagSample &sample);

    /** Current best estimate. */
    RigidBodyState estimate() const;

  private:
    PositionEkf ekf_;
    AttitudeFilter attitude_;
    SensorNoise noise_;
    Vec3 lastGyro_{};
    double lastImuTime_ = -1.0;
};

} // namespace dronedse

#endif // DRONEDSE_CONTROL_EKF_HH
