/**
 * @file
 * The hierarchical inner-loop cascade (paper Figure 6, Table 2b):
 *
 *   position controller  (high level,  40 Hz, ~1 s response)
 *   -> velocity controller
 *   -> attitude controller (mid level, 200 Hz, ~100 ms response)
 *   -> rate/thrust controller (low level, 1 kHz, ~50 ms response)
 *   -> mixer -> motors
 *
 * Time-scale separation: each level runs slower than the one below
 * and treats it as ideal.
 */

#ifndef DRONEDSE_CONTROL_CASCADE_HH
#define DRONEDSE_CONTROL_CASCADE_HH

#include <array>

#include "control/mixer.hh"
#include "control/pid.hh"
#include "sim/rigid_body.hh"

namespace dronedse {

/** Update frequencies of the three levels (paper Table 2b). */
struct LoopRates
{
    double thrustHz = 1000.0;
    double attitudeHz = 200.0;
    double positionHz = 40.0;
};

/**
 * Targets handed down by the outer loop (paper Figure 6: the outer
 * loop dictates position, velocity, and sometimes attitude targets).
 */
struct OuterLoopTargets
{
    Vec3 position{0.0, 0.0, 1.0};
    double yaw = 0.0;
    /**
     * Velocity mode: track `velocity` directly and ignore
     * `position` (the "velocity target" path of Figure 6, used by
     * e.g. target-following applications).
     */
    bool velocityMode = false;
    Vec3 velocity{};
};

/** Gain set of the cascade. */
struct CascadeGains
{
    double positionKp = 1.6;
    double velocityKp = 3.0;
    double velocityKi = 0.4;
    double attitudeKp = 14.0;
    double rateKp = 38.0;
    double rateKi = 12.0;
    double yawRateKp = 10.0;
    /** Velocity command limit (m/s). */
    double maxVelocity = 6.0;
    /** Tilt limit (rad), the max stable angle of attack. */
    double maxTilt = 0.6;
    /** Roll/pitch body-rate command limit (rad/s). */
    double maxBodyRate = 6.0;
    /**
     * Yaw-rate command limit (rad/s).  Yaw authority comes from
     * propeller reaction torque only, so it is far weaker than
     * roll/pitch; commanding more simply saturates the mixer.
     */
    double maxYawRate = 1.5;
    /** Yaw angular-acceleration limit (rad/s^2), same reason. */
    double maxYawAccel = 3.0;
};

/** Airframe facts the cascade needs. */
struct CascadePlant
{
    double massKg = 1.071;
    Vec3 inertiaDiag{0.011, 0.011, 0.021};
    MixerConfig mixer{};
};

/**
 * The full cascaded controller.  Call tick() at the low-level rate
 * (thrustHz); the higher levels run on their own dividers, which is
 * exactly the paper's time-scale separation.
 */
class CascadeController
{
  public:
    CascadeController(CascadePlant plant, LoopRates rates = {},
                      CascadeGains gains = {});

    /**
     * One low-level step.
     *
     * @param estimate State estimate (from the EKF in closed loop,
     *        or ground truth in plant-model tests).
     * @param targets  Outer-loop set targets.
     * @return Per-motor thrust commands (N).
     */
    std::array<double, 4> tick(const RigidBodyState &estimate,
                               const OuterLoopTargets &targets);

    /** Number of low-level updates executed. */
    long thrustUpdates() const { return thrustTicks_; }
    /** Number of mid-level updates executed. */
    long attitudeUpdates() const { return attitudeTicks_; }
    /** Number of high-level updates executed. */
    long positionUpdates() const { return positionTicks_; }

    /** Attitude setpoint currently tracked by the mid level. */
    const Quaternion &attitudeTarget() const { return attitudeTarget_; }

    /** Direct attitude-target injection (attitude-mode tests). */
    void overrideAttitudeTarget(const Quaternion &target);

    /** Direct body-rate-target injection (rate-mode tests). */
    void overrideRateTarget(const Vec3 &rates);

    /** Leave any override mode and resume the full cascade. */
    void clearOverrides();

  private:
    void runPositionLevel(const RigidBodyState &estimate,
                          const OuterLoopTargets &targets);
    void runAttitudeLevel(const RigidBodyState &estimate);
    ControlWrench runRateLevel(const RigidBodyState &estimate);

    CascadePlant plant_;
    LoopRates rates_;
    CascadeGains gains_;

    Pid velX_, velY_, velZ_;
    Pid rateX_, rateY_, rateZ_;

    // Inter-level setpoints.
    Quaternion attitudeTarget_;
    double thrustTarget_ = 0.0;
    Vec3 rateTarget_{};

    enum class Mode { Full, AttitudeOverride, RateOverride };
    Mode mode_ = Mode::Full;

    long thrustTicks_ = 0;
    long attitudeTicks_ = 0;
    long positionTicks_ = 0;
    int attitudeDivider_ = 5;
    int positionDivider_ = 25;
};

} // namespace dronedse

#endif // DRONEDSE_CONTROL_CASCADE_HH
