/**
 * @file
 * Closed-loop autopilot: the simulated quadrotor, sensor suite,
 * state estimator, cascaded inner loop, and waypoint outer loop
 * wired together — the software stack of paper Figure 5 running
 * against the physics of Section 2.1.
 */

#ifndef DRONEDSE_CONTROL_AUTOPILOT_HH
#define DRONEDSE_CONTROL_AUTOPILOT_HH

#include <vector>

#include "control/cascade.hh"
#include "control/ekf.hh"
#include "control/outer_loop.hh"
#include "sim/environment.hh"
#include "sim/quadrotor.hh"

namespace dronedse {

/** Closed-loop configuration. */
struct AutopilotConfig
{
    /** Inner-loop rates (paper Table 2b defaults). */
    LoopRates rates{};
    /** Sensor rates (paper Table 2a defaults). */
    SensorRates sensorRates{};
    /** Sensor noise. */
    SensorNoise noise{};
    /** Wind environment. */
    WindParams wind{};
    /** Outer-loop navigation rate (Hz). */
    double navRateHz = 10.0;
    /**
     * Feed ground truth to the controller instead of the estimator
     * output (isolates control physics from estimation noise).
     */
    bool useTruthState = false;
    /** Physics integration step (s); keep <= 1 ms for stability. */
    double simDt = 0.001;
    /** RNG seed for wind and sensors. */
    std::uint64_t seed = 17;
};

/** One sample of the flight log. */
struct FlightSample
{
    double t = 0.0;
    Vec3 position;
    Vec3 target;
    /** Propulsion electrical power (W). */
    double propulsionPowerW = 0.0;
};

/** The closed loop. */
class Autopilot
{
  public:
    Autopilot(QuadrotorParams params, std::vector<Waypoint> mission,
              AutopilotConfig config = {});

    /** Advance the closed loop by `duration` seconds. */
    void run(double duration);

    /** Advance a single physics step. */
    void step();

    const Quadrotor &quad() const { return quad_; }
    Quadrotor &quad() { return quad_; }
    /** Sensor suite (e.g. for GPS-outage injection). */
    SensorSuite &sensors() { return sensors_; }
    const WaypointNavigator &navigator() const { return navigator_; }
    const CascadeController &cascade() const { return cascade_; }
    const StateEstimator &estimator() const { return estimator_; }
    double time() const { return t_; }

    /** Flight log sampled at ~50 Hz. */
    const std::vector<FlightSample> &log() const { return log_; }

    /**
     * Abort the mission and descend at the current estimated
     * position — the DegradationPolicy's terminal land-safe action.
     * The waypoint navigator is bypassed from now on.
     */
    void commandLandSafe();

    /** True once land-safe has been commanded. */
    bool landSafeActive() const { return landSafe_; }

    /** Position error (m) between estimate and truth right now. */
    double estimationErrorM() const;

    /** Mean distance to target over the last `window` seconds. */
    double meanTrackingErrorM(double window) const;

  private:
    /** Position fed to the outer loop (estimate or truth). */
    Vec3 navPosition() const;

    AutopilotConfig config_;
    Quadrotor quad_;
    WindField wind_;
    SensorSuite sensors_;
    StateEstimator estimator_;
    CascadeController cascade_;
    WaypointNavigator navigator_;

    OuterLoopTargets targets_;
    bool landSafe_ = false;
    double t_ = 0.0;
    long stepCount_ = 0;
    int controlDivider_ = 1;
    long navDivider_ = 100;
    double logAccumulator_ = 0.0;
    std::vector<FlightSample> log_;
};

} // namespace dronedse

#endif // DRONEDSE_CONTROL_AUTOPILOT_HH
