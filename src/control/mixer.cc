#include "control/mixer.hh"

#include <algorithm>
#include <cmath>

namespace dronedse {

std::array<double, 4>
mixWrench(const ControlWrench &wrench, const MixerConfig &config)
{
    const double d = config.armLengthM / std::sqrt(2.0);
    const double k = config.yawTorquePerThrust;
    const double base = wrench.thrustN / 4.0;
    const double rx = wrench.tauX / (4.0 * d);
    const double ry = wrench.tauY / (4.0 * d);

    auto mix = [&](double yaw_scale) {
        const double rz = yaw_scale * wrench.tauZ / (4.0 * k);
        // Matches the motor layout in sim/quadrotor.cc.
        return std::array<double, 4>{
            base - rx - ry + rz, // m0 front-right CW
            base + rx + ry + rz, // m1 back-left   CW
            base + rx - ry - rz, // m2 front-left  CCW
            base - rx + ry - rz, // m3 back-right  CCW
        };
    };

    // Reduce yaw authority first when motors saturate.
    for (double yaw_scale : {1.0, 0.5, 0.2, 0.0}) {
        auto thrusts = mix(yaw_scale);
        const auto [lo, hi] =
            std::minmax_element(thrusts.begin(), thrusts.end());
        if (*lo >= 0.0 && *hi <= config.maxThrustPerMotorN)
            return thrusts;
        if (yaw_scale == 0.0) {
            // Still saturated: clamp as a last resort.
            for (auto &t : thrusts)
                t = std::clamp(t, 0.0, config.maxThrustPerMotorN);
            return thrusts;
        }
    }
    return mix(0.0);
}

} // namespace dronedse
