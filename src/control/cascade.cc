#include "control/cascade.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

CascadeController::CascadeController(CascadePlant plant, LoopRates rates,
                                     CascadeGains gains)
    : plant_(plant), rates_(rates), gains_(gains),
      velX_({gains.velocityKp, gains.velocityKi, 0.0, 0.5 * kGravity,
             2.0}),
      velY_({gains.velocityKp, gains.velocityKi, 0.0, 0.5 * kGravity,
             2.0}),
      velZ_({gains.velocityKp, gains.velocityKi, 0.0, 0.6 * kGravity,
             2.0}),
      rateX_({gains.rateKp, gains.rateKi, 0.0, 0.0, 1.0}),
      rateY_({gains.rateKp, gains.rateKi, 0.0, 0.0, 1.0}),
      rateZ_({gains.yawRateKp, 0.0, 0.0, gains.maxYawAccel, 0.0})
{
    if (rates_.thrustHz < rates_.attitudeHz ||
        rates_.attitudeHz < rates_.positionHz) {
        fatal("CascadeController: rates must respect time-scale "
              "separation (thrust >= attitude >= position)");
    }
    attitudeDivider_ = std::max(
        1, static_cast<int>(rates_.thrustHz / rates_.attitudeHz));
    positionDivider_ = std::max(
        1, static_cast<int>(rates_.thrustHz / rates_.positionHz));
    thrustTarget_ = plant_.massKg * kGravity;
}

void
CascadeController::overrideAttitudeTarget(const Quaternion &target)
{
    mode_ = Mode::AttitudeOverride;
    attitudeTarget_ = target;
    thrustTarget_ = plant_.massKg * kGravity;
}

void
CascadeController::overrideRateTarget(const Vec3 &rates)
{
    mode_ = Mode::RateOverride;
    rateTarget_ = rates;
    thrustTarget_ = plant_.massKg * kGravity;
}

void
CascadeController::clearOverrides()
{
    mode_ = Mode::Full;
}

void
CascadeController::runPositionLevel(const RigidBodyState &estimate,
                                    const OuterLoopTargets &targets)
{
    ++positionTicks_;
    const double dt = 1.0 / rates_.positionHz;

    // Position -> velocity command (P), clamped to maxVelocity; in
    // velocity mode the outer loop supplies the command directly.
    Vec3 vel_cmd = targets.velocityMode
                       ? targets.velocity
                       : (targets.position - estimate.position) *
                             gains_.positionKp;
    const double vn = vel_cmd.norm();
    if (vn > gains_.maxVelocity)
        vel_cmd = vel_cmd * (gains_.maxVelocity / vn);

    // Velocity -> acceleration command (PI).
    const Vec3 acc_cmd{
        velX_.update(vel_cmd.x, estimate.velocity.x, dt),
        velY_.update(vel_cmd.y, estimate.velocity.y, dt),
        velZ_.update(vel_cmd.z, estimate.velocity.z, dt)};

    // Acceleration -> tilt + collective thrust.  The desired thrust
    // direction in the world frame is (acc + g) normalized; yaw is
    // commanded separately.
    const Vec3 thrust_dir_world =
        Vec3{acc_cmd.x, acc_cmd.y, acc_cmd.z + kGravity};
    const double norm = thrust_dir_world.norm();
    thrustTarget_ = plant_.massKg * norm;

    // Small-angle tilt extraction in the yaw-aligned frame.
    const double cy = std::cos(targets.yaw);
    const double sy = std::sin(targets.yaw);
    const double ax = cy * thrust_dir_world.x + sy * thrust_dir_world.y;
    const double ay = -sy * thrust_dir_world.x + cy * thrust_dir_world.y;
    double pitch = std::atan2(ax, thrust_dir_world.z);
    double roll = std::atan2(-ay, thrust_dir_world.z);
    pitch = std::clamp(pitch, -gains_.maxTilt, gains_.maxTilt);
    roll = std::clamp(roll, -gains_.maxTilt, gains_.maxTilt);

    attitudeTarget_ = Quaternion::fromEuler(roll, pitch, targets.yaw);
}

void
CascadeController::runAttitudeLevel(const RigidBodyState &estimate)
{
    ++attitudeTicks_;

    // Attitude error as a body-frame rotation vector.
    Quaternion err = estimate.attitude.conjugate() * attitudeTarget_;
    if (err.w < 0.0)
        err = {-err.w, -err.x, -err.y, -err.z};
    const Vec3 err_vec{2.0 * err.x, 2.0 * err.y, 2.0 * err.z};

    Vec3 rate_cmd = err_vec * gains_.attitudeKp;
    const double rn = rate_cmd.norm();
    if (rn > gains_.maxBodyRate)
        rate_cmd = rate_cmd * (gains_.maxBodyRate / rn);
    rate_cmd.z = std::clamp(rate_cmd.z, -gains_.maxYawRate,
                            gains_.maxYawRate);
    rateTarget_ = rate_cmd;
}

ControlWrench
CascadeController::runRateLevel(const RigidBodyState &estimate)
{
    ++thrustTicks_;
    const double dt = 1.0 / rates_.thrustHz;

    // Rate error -> angular acceleration -> torque through inertia.
    const Vec3 ang_acc{
        rateX_.update(rateTarget_.x, estimate.angularVelocity.x, dt),
        rateY_.update(rateTarget_.y, estimate.angularVelocity.y, dt),
        rateZ_.update(rateTarget_.z, estimate.angularVelocity.z, dt)};

    ControlWrench wrench;
    wrench.thrustN = thrustTarget_;
    wrench.tauX = plant_.inertiaDiag.x * ang_acc.x;
    wrench.tauY = plant_.inertiaDiag.y * ang_acc.y;
    wrench.tauZ = plant_.inertiaDiag.z * ang_acc.z;
    return wrench;
}

std::array<double, 4>
CascadeController::tick(const RigidBodyState &estimate,
                        const OuterLoopTargets &targets)
{
    if (mode_ == Mode::Full &&
        thrustTicks_ % positionDivider_ == 0) {
        runPositionLevel(estimate, targets);
    }
    if (mode_ != Mode::RateOverride &&
        thrustTicks_ % attitudeDivider_ == 0) {
        runAttitudeLevel(estimate);
    }
    const ControlWrench wrench = runRateLevel(estimate);
    return mixWrench(wrench, plant_.mixer);
}

} // namespace dronedse
