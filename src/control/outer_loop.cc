#include "control/outer_loop.hh"

#include "util/logging.hh"

namespace dronedse {

WaypointNavigator::WaypointNavigator(std::vector<Waypoint> mission)
    : mission_(std::move(mission))
{
    if (mission_.empty())
        fatal("WaypointNavigator: mission must have waypoints");
}

OuterLoopTargets
WaypointNavigator::update(const Vec3 &position, double t)
{
    OuterLoopTargets targets;
    if (missionComplete()) {
        // Hold the last waypoint.
        targets.position = mission_.back().position;
        targets.yaw = mission_.back().yaw;
        return targets;
    }

    const Waypoint &wp = mission_[index_];
    targets.position = wp.position;
    targets.yaw = wp.yaw;

    const double dist = (position - wp.position).norm();
    if (dist <= wp.radius) {
        if (arrivedAt_ < 0.0)
            arrivedAt_ = t;
        if (t - arrivedAt_ >= wp.holdS) {
            ++index_;
            arrivedAt_ = -1.0;
        }
    } else {
        arrivedAt_ = -1.0;
    }
    return targets;
}

} // namespace dronedse
