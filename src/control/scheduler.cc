#include "control/scheduler.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace dronedse {

void
RateScheduler::addTask(std::string name, double rate_hz, double cost_s,
                       std::function<void(double)> fn)
{
    if (rate_hz <= 0.0 || cost_s < 0.0)
        fatal("RateScheduler::addTask: invalid rate or cost");

    Task task;
    task.stats.name = std::move(name);
    task.stats.rateHz = rate_hz;
    task.periodS = 1.0 / rate_hz;
    task.costS = cost_s;
    task.fn = std::move(fn);
    tasks_.push_back(std::move(task));

    // Rate-monotonic priority: highest rate first.
    std::stable_sort(tasks_.begin(), tasks_.end(),
                     [](const Task &a, const Task &b) {
                         return a.stats.rateHz > b.stats.rateHz;
                     });
}

void
RateScheduler::advanceTo(double t)
{
    if (t < now_)
        fatal("RateScheduler::advanceTo: time must not go backwards");

    // Release loop: find the earliest pending release and run it.
    while (true) {
        Task *next = nullptr;
        for (auto &task : tasks_) {
            if (task.nextRelease <= t + 1e-12 &&
                (!next || task.nextRelease < next->nextRelease - 1e-12 ||
                 (task.nextRelease <= next->nextRelease + 1e-12 &&
                  task.stats.rateHz > next->stats.rateHz))) {
                next = &task;
            }
        }
        if (!next)
            break;

        const double release = next->nextRelease;
        // The CPU starts this job when it is free; contention
        // inflates the job's cost by the current scale.
        const double cost = next->costS * costScale_;
        const double start = std::max(release, cpuBusyUntil_);
        const double finish = start + cost;
        // Deadline: the next release of the same task.
        if (finish > release + next->periodS + 1e-12) {
            ++next->stats.deadlineMisses;
            obs::metrics()
                .counter("control.scheduler.deadline_misses")
                .add(1);
        }

        cpuBusyUntil_ = finish;
        totalCpuS_ += cost;
        ++next->stats.executions;
        next->stats.cpuTimeS += cost;
        obs::metrics().counter("control.scheduler.executions").add(1);
        // Scheduler time is the mission clock, not wall time: the
        // span lands on the simulated-time track.
        if (obs::tracer().enabled()) {
            obs::tracer().recordManual(next->stats.name.c_str(),
                                       "control", obs::kSimTrack,
                                       start * 1e6, cost * 1e6);
        }
        next->fn(release);
        next->nextRelease = release + next->periodS;
    }
    now_ = t;
}

void
RateScheduler::setCostScale(double scale)
{
    if (scale <= 0.0)
        fatal("RateScheduler::setCostScale: scale must be > 0");
    costScale_ = scale;
}

RateScheduler::Task &
RateScheduler::findTask(const std::string &name)
{
    for (auto &task : tasks_) {
        if (task.stats.name == name)
            return task;
    }
    fatal("RateScheduler: no task named '" + name + "'");
}

const RateScheduler::Task &
RateScheduler::findTask(const std::string &name) const
{
    return const_cast<RateScheduler *>(this)->findTask(name);
}

void
RateScheduler::setTaskRate(const std::string &name, double rate_hz)
{
    if (rate_hz <= 0.0)
        fatal("RateScheduler::setTaskRate: rate must be > 0");

    Task &task = findTask(name);
    task.stats.rateHz = rate_hz;
    task.periodS = 1.0 / rate_hz;

    // Priorities are rate-monotonic; a re-rated task re-sorts.
    std::stable_sort(tasks_.begin(), tasks_.end(),
                     [](const Task &a, const Task &b) {
                         return a.stats.rateHz > b.stats.rateHz;
                     });
}

double
RateScheduler::taskRate(const std::string &name) const
{
    return findTask(name).stats.rateHz;
}

void
RateScheduler::setTaskCost(const std::string &name, double cost_s)
{
    if (cost_s < 0.0)
        fatal("RateScheduler::setTaskCost: cost must be >= 0");
    findTask(name).costS = cost_s;
}

double
RateScheduler::taskCost(const std::string &name) const
{
    return findTask(name).costS;
}

long
RateScheduler::totalDeadlineMisses() const
{
    long total = 0;
    for (const auto &task : tasks_)
        total += task.stats.deadlineMisses;
    return total;
}

std::vector<TaskStats>
RateScheduler::stats() const
{
    std::vector<TaskStats> out;
    out.reserve(tasks_.size());
    for (const auto &task : tasks_)
        out.push_back(task.stats);
    return out;
}

double
RateScheduler::utilization() const
{
    return now_ > 0.0 ? std::min(1.0, totalCpuS_ / now_) : 0.0;
}

} // namespace dronedse
