#include "control/pid.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dronedse {

Pid::Pid(PidConfig config)
    : config_(config)
{
}

double
Pid::update(double setpoint, double measurement, double dt)
{
    if (dt <= 0.0)
        fatal("Pid::update: dt must be positive");

    const double error = setpoint - measurement;

    integral_ += error * dt;
    if (config_.integralLimit > 0.0) {
        integral_ = std::clamp(integral_, -config_.integralLimit,
                               config_.integralLimit);
    }

    double derivative = 0.0;
    if (hasPrev_ && config_.kd != 0.0)
        derivative = -(measurement - prevMeasurement_) / dt;
    prevMeasurement_ = measurement;
    hasPrev_ = true;

    double out = config_.kp * error + config_.ki * integral_ +
                 config_.kd * derivative;
    if (config_.outputLimit > 0.0)
        out = std::clamp(out, -config_.outputLimit, config_.outputLimit);
    return out;
}

void
Pid::reset()
{
    integral_ = 0.0;
    prevMeasurement_ = 0.0;
    hasPrev_ = false;
}

} // namespace dronedse
