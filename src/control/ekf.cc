#include "control/ekf.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

PositionEkf::PositionEkf()
    : x_(6, 0.0), p_(6, 6)
{
    // Start uncertain: 10 m position, 2 m/s velocity.
    for (int i = 0; i < 3; ++i) {
        p_(i, i) = 100.0;
        p_(i + 3, i + 3) = 4.0;
    }
}

void
PositionEkf::predict(const Vec3 &accel_world, double dt)
{
    if (dt <= 0.0)
        fatal("PositionEkf::predict: dt must be positive");

    // x = F x + B a with constant-acceleration kinematics.
    x_[0] += x_[3] * dt + 0.5 * accel_world.x * dt * dt;
    x_[1] += x_[4] * dt + 0.5 * accel_world.y * dt * dt;
    x_[2] += x_[5] * dt + 0.5 * accel_world.z * dt * dt;
    x_[3] += accel_world.x * dt;
    x_[4] += accel_world.y * dt;
    x_[5] += accel_world.z * dt;

    // P = F P F^T + Q.
    Matrix f = Matrix::identity(6);
    for (int i = 0; i < 3; ++i)
        f(i, i + 3) = dt;
    Matrix q(6, 6);
    const double a2 = accelNoise_ * accelNoise_;
    for (int i = 0; i < 3; ++i) {
        q(i, i) = 0.25 * dt * dt * dt * dt * a2;
        q(i, i + 3) = 0.5 * dt * dt * dt * a2;
        q(i + 3, i) = q(i, i + 3);
        q(i + 3, i + 3) = dt * dt * a2;
    }
    p_ = f * p_ * f.transpose() + q;
}

void
PositionEkf::update(const Matrix &h, const std::vector<double> &z,
                    const std::vector<double> &r_diag)
{
    const std::size_t m = h.rows();
    // Innovation y = z - H x.
    std::vector<double> y(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        double hx = 0.0;
        for (std::size_t j = 0; j < 6; ++j)
            hx += h(i, j) * x_[j];
        y[i] = z[i] - hx;
    }

    // S = H P H^T + R.
    Matrix s = h * p_ * h.transpose();
    for (std::size_t i = 0; i < m; ++i)
        s(i, i) += r_diag[i];

    // K = P H^T S^-1, computed column-by-column via solves of
    // S k_col = (H P)_col.
    const Matrix hp = h * p_; // m x 6
    Matrix k(6, m);
    for (std::size_t col = 0; col < 6; ++col) {
        std::vector<double> rhs(m, 0.0);
        for (std::size_t i = 0; i < m; ++i)
            rhs[i] = hp(i, col);
        std::vector<double> sol;
        if (!s.solve(rhs, sol))
            return; // numerically singular: skip this update
        for (std::size_t i = 0; i < m; ++i)
            k(col, i) = sol[i];
    }

    // x += K y.
    for (std::size_t i = 0; i < 6; ++i) {
        double dx = 0.0;
        for (std::size_t j = 0; j < m; ++j)
            dx += k(i, j) * y[j];
        x_[i] += dx;
    }

    // P = (I - K H) P.
    const Matrix kh = k * h;
    p_ = (Matrix::identity(6) - kh) * p_;
}

void
PositionEkf::updateGps(const GpsSample &sample, double pos_std,
                       double vel_std)
{
    Matrix h = Matrix::identity(6);
    const std::vector<double> z = {
        sample.position.x, sample.position.y, sample.position.z,
        sample.velocity.x, sample.velocity.y, sample.velocity.z};
    const double pr = pos_std * pos_std;
    const double vr = vel_std * vel_std;
    update(h, z, {pr, pr, 2.25 * pr, vr, vr, vr});
}

void
PositionEkf::updateBaro(const BaroSample &sample, double std)
{
    Matrix h(1, 6);
    h(0, 2) = 1.0;
    update(h, {sample.altitude}, {std * std});
}

Vec3
PositionEkf::position() const
{
    return {x_[0], x_[1], x_[2]};
}

Vec3
PositionEkf::velocity() const
{
    return {x_[3], x_[4], x_[5]};
}

double
PositionEkf::positionUncertainty() const
{
    return p_(0, 0) + p_(1, 1) + p_(2, 2);
}

AttitudeFilter::AttitudeFilter(double accel_gain, double mag_gain)
    : accelGain_(accel_gain), magGain_(mag_gain)
{
}

void
AttitudeFilter::predict(const Vec3 &gyro, double dt)
{
    q_ = q_.integrated(gyro, dt);
}

void
AttitudeFilter::correctAccel(const Vec3 &accel_body, double dt)
{
    // When quasi-static, the specific force points along the
    // body-frame "up"; lean the estimate toward it slowly.
    const double norm = accel_body.norm();
    if (norm < 0.88 * kGravity || norm > 1.12 * kGravity)
        return; // dynamic maneuver: gravity direction unreliable

    const Vec3 measured_up = accel_body / norm;
    const Vec3 estimated_up =
        q_.conjugate().rotate({0.0, 0.0, 1.0});
    // For a small body-side attitude error phi,
    // estimated_up x measured_up ~= -phi, so rotating by
    // +accelGain * dt * (-cross) walks the estimate toward truth
    // with time constant 1/accelGain.
    const Vec3 correction =
        estimated_up.cross(measured_up) * (-accelGain_);
    q_ = q_.integrated(correction, dt);
}

void
AttitudeFilter::correctMag(double yaw)
{
    double err = yaw - q_.yaw();
    while (err > M_PI)
        err -= 2.0 * M_PI;
    while (err < -M_PI)
        err += 2.0 * M_PI;
    const Quaternion dq =
        Quaternion::fromAxisAngle({0.0, 0.0, 1.0}, magGain_ * err);
    q_ = (dq * q_).normalized();
}

StateEstimator::StateEstimator(SensorNoise noise)
    : noise_(noise)
{
}

void
StateEstimator::onImu(const ImuSample &sample)
{
    const double dt = lastImuTime_ < 0.0
                          ? 0.005
                          : sample.timestamp - lastImuTime_;
    lastImuTime_ = sample.timestamp;
    lastGyro_ = sample.gyro;

    const double step = dt > 0.0 ? dt : 0.005;
    attitude_.predict(sample.gyro, step);
    attitude_.correctAccel(sample.accel, step);

    // Rotate specific force to the world frame and remove gravity.
    const Vec3 accel_world =
        attitude_.attitude().rotate(sample.accel) +
        Vec3{0.0, 0.0, -kGravity};
    ekf_.predict(accel_world, dt > 0.0 ? dt : 0.005);
}

void
StateEstimator::onGps(const GpsSample &sample)
{
    ekf_.updateGps(sample, noise_.gpsStd, noise_.gpsVelStd);
}

void
StateEstimator::onBaro(const BaroSample &sample)
{
    ekf_.updateBaro(sample, noise_.baroStd);
}

void
StateEstimator::onMag(const MagSample &sample)
{
    attitude_.correctMag(sample.yaw);
}

RigidBodyState
StateEstimator::estimate() const
{
    RigidBodyState s;
    s.position = ekf_.position();
    s.velocity = ekf_.velocity();
    s.attitude = attitude_.attitude();
    s.angularVelocity = lastGyro_;
    return s;
}

} // namespace dronedse
