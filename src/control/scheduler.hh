/**
 * @file
 * Rate scheduler for the control stack's periodic tasks.
 *
 * The paper's central real-time observation (Section 2.1.3D) is that
 * the inner loop runs at 50-500 Hz, bounded by physics rather than
 * compute; the scheduler tracks deadline misses so experiments can
 * show what happens when heavy outer-loop work (e.g. SLAM) steals
 * cycles.
 */

#ifndef DRONEDSE_CONTROL_SCHEDULER_HH
#define DRONEDSE_CONTROL_SCHEDULER_HH

#include <functional>
#include <string>
#include <vector>

namespace dronedse {

/** Statistics for one periodic task. */
struct TaskStats
{
    std::string name;
    double rateHz = 0.0;
    long executions = 0;
    long deadlineMisses = 0;
    /** Total simulated execution time consumed (s). */
    double cpuTimeS = 0.0;
};

/**
 * Cooperative rate scheduler with a simulated CPU-time budget.
 *
 * Each task declares a rate and a per-invocation execution cost (the
 * time it occupies the CPU).  tick() advances wall time; a task
 * misses its deadline when the CPU is still busy with earlier work
 * past the task's release time plus its period.
 */
class RateScheduler
{
  public:
    /**
     * Register a task.
     *
     * @param name     Task name for the stats report.
     * @param rate_hz  Release rate.
     * @param cost_s   Simulated execution time per invocation.
     * @param fn       The work; invoked once per release.
     */
    void addTask(std::string name, double rate_hz, double cost_s,
                 std::function<void(double)> fn);

    /**
     * Advance wall time to `t` seconds, releasing and running due
     * tasks in rate-monotonic priority order (highest rate first).
     */
    void advanceTo(double t);

    /** Per-task statistics. */
    std::vector<TaskStats> stats() const;

    /** Simulated CPU utilization in [0, 1] so far. */
    double utilization() const;

    /**
     * Global execution-cost multiplier — how a compute-contention
     * burst (a co-runner polluting the shared cache, paper Fig 15)
     * lands on the scheduler: every task's cost is scaled by
     * `scale` until reset to 1.
     */
    void setCostScale(double scale);

    /** Current cost multiplier. */
    double costScale() const { return costScale_; }

    /**
     * Re-rate a registered task (outer-loop rate shedding).  The
     * task's future releases use the new period; fatal() when no
     * task has that name.
     */
    void setTaskRate(const std::string &name, double rate_hz);

    /** Current rate of a registered task (Hz). */
    double taskRate(const std::string &name) const;

    /**
     * Re-cost a registered task — how a workload migrates between
     * hosts (offloaded SLAM cheap on the drone, onboard SLAM not).
     */
    void setTaskCost(const std::string &name, double cost_s);

    /** Current per-invocation cost of a registered task (s). */
    double taskCost(const std::string &name) const;

    /** Deadline misses summed over every task. */
    long totalDeadlineMisses() const;

  private:
    struct Task
    {
        TaskStats stats;
        double periodS = 0.0;
        double costS = 0.0;
        double nextRelease = 0.0;
        std::function<void(double)> fn;
    };

    Task &findTask(const std::string &name);
    const Task &findTask(const std::string &name) const;

    std::vector<Task> tasks_;
    double now_ = 0.0;
    double cpuBusyUntil_ = 0.0;
    double totalCpuS_ = 0.0;
    double costScale_ = 1.0;
};

} // namespace dronedse

#endif // DRONEDSE_CONTROL_SCHEDULER_HH
