/**
 * @file
 * Outer-loop autonomy: waypoint navigation producing the position /
 * yaw targets the inner loop tracks (paper Figure 6, Table 1's
 * "control set target" column: position/attitude/velocity targets,
 * navigation & trajectory, planning).
 */

#ifndef DRONEDSE_CONTROL_OUTER_LOOP_HH
#define DRONEDSE_CONTROL_OUTER_LOOP_HH

#include <cstddef>
#include <vector>

#include "control/cascade.hh"
#include "util/vec3.hh"

namespace dronedse {

/** One mission waypoint. */
struct Waypoint
{
    Vec3 position;
    /** Desired yaw while flying to this waypoint (rad). */
    double yaw = 0.0;
    /** Acceptance radius (m). */
    double radius = 0.5;
    /** Hold time at the waypoint before advancing (s). */
    double holdS = 0.0;
};

/**
 * Sequential waypoint navigator.  Runs at the outer-loop rate (tens
 * of hertz at most — mission planning has relaxed deadlines, paper
 * Section 6).
 */
class WaypointNavigator
{
  public:
    explicit WaypointNavigator(std::vector<Waypoint> mission);

    /**
     * Update with the current estimate; returns the targets for the
     * inner loop.
     *
     * @param position Current position estimate.
     * @param t        Mission time (s).
     */
    OuterLoopTargets update(const Vec3 &position, double t);

    /** Index of the waypoint currently being tracked. */
    std::size_t currentIndex() const { return index_; }

    /** True when every waypoint has been visited. */
    bool missionComplete() const { return index_ >= mission_.size(); }

    /** Number of waypoints reached so far. */
    std::size_t reachedCount() const { return index_; }

  private:
    std::vector<Waypoint> mission_;
    std::size_t index_ = 0;
    double arrivedAt_ = -1.0;
};

} // namespace dronedse

#endif // DRONEDSE_CONTROL_OUTER_LOOP_HH
