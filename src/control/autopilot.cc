#include "control/autopilot.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

namespace {

CascadePlant
plantFromParams(const QuadrotorParams &params)
{
    CascadePlant plant;
    plant.massKg = params.massKg;
    plant.inertiaDiag = params.inertiaDiag;
    plant.mixer.armLengthM = params.armLengthM;
    plant.mixer.yawTorquePerThrust = params.yawTorquePerThrust;
    plant.mixer.maxThrustPerMotorN = params.maxThrustPerMotorN;
    return plant;
}

} // namespace

Autopilot::Autopilot(QuadrotorParams params, std::vector<Waypoint> mission,
                     AutopilotConfig config)
    : config_(config), quad_(params), wind_(config.wind, config.seed),
      sensors_(config.sensorRates, config.noise, config.seed + 1),
      estimator_(config.noise),
      cascade_(plantFromParams(params), config.rates),
      navigator_(std::move(mission))
{
    if (config_.simDt <= 0.0 || config_.simDt > 0.005)
        fatal("Autopilot: simDt must be in (0, 5 ms]");

    // The cascade's low level runs at rates.thrustHz; the physics
    // runs at 1/simDt.  The divider holds motor commands between
    // control updates, modelling a slower flight controller.
    controlDivider_ = std::max(
        1, static_cast<int>(std::lround(
               1.0 / (config_.simDt * config_.rates.thrustHz))));
    navDivider_ = std::max(
        1L, static_cast<long>(std::lround(
                1.0 / (config_.simDt * config_.navRateHz))));
}

void
Autopilot::step()
{
    const double dt = config_.simDt;

    // Physics step with wind; recover the true acceleration for the
    // accelerometer model.
    const Vec3 v_before = quad_.state().velocity;
    const Vec3 wind = wind_.sample(dt);
    quad_.step(dt, wind);
    const Vec3 accel_world = (quad_.state().velocity - v_before) / dt;

    t_ += dt;
    ++stepCount_;

    // Sensors fire at their own rates (Table 2a).
    sensors_.advance(t_, quad_.state(), accel_world);
    if (auto imu = sensors_.imu())
        estimator_.onImu(*imu);
    if (auto gps = sensors_.gps())
        estimator_.onGps(*gps);
    if (auto baro = sensors_.baro())
        estimator_.onBaro(*baro);
    if (auto mag = sensors_.mag())
        estimator_.onMag(*mag);

    // Outer loop: waypoint navigation at navRateHz — unless the
    // degradation policy has commanded a land-safe descent, which
    // pins the target under the vehicle and rides it to the ground.
    if (stepCount_ % navDivider_ == 0 && !landSafe_)
        targets_ = navigator_.update(navPosition(), t_);

    // Inner loop at thrustHz.
    if (stepCount_ % controlDivider_ == 0) {
        RigidBodyState estimate = config_.useTruthState
                                      ? quad_.state()
                                      : estimator_.estimate();
        quad_.commandMotors(cascade_.tick(estimate, targets_));
    }

    // ~50 Hz flight log.
    logAccumulator_ += dt;
    if (logAccumulator_ >= 0.02) {
        logAccumulator_ = 0.0;
        log_.push_back({t_, quad_.state().position, targets_.position,
                        quad_.electricalPowerW()});
    }
}

void
Autopilot::run(double duration)
{
    obs::ScopedSpan span("control.autopilot.run", "control");
    const long steps =
        static_cast<long>(std::lround(duration / config_.simDt));
    for (long i = 0; i < steps; ++i)
        step();
    obs::metrics()
        .counter("control.autopilot.steps")
        .add(static_cast<std::uint64_t>(std::max(0L, steps)));
}

Vec3
Autopilot::navPosition() const
{
    return config_.useTruthState ? quad_.state().position
                                 : estimator_.estimate().position;
}

void
Autopilot::commandLandSafe()
{
    if (landSafe_)
        return;
    landSafe_ = true;

    // Descend at a fixed slow rate in velocity mode.  Velocity
    // commands survive what position commands cannot: with GPS out
    // the position estimate drifts without bound, but the velocity
    // estimate drifts slowly, so a -0.5 m/s descent stays a gentle
    // descent — the least-demanding trajectory a degraded vehicle
    // can fly.
    targets_.velocity = {0.0, 0.0, -0.5};
    targets_.velocityMode = true;
    obs::metrics().counter("control.autopilot.land_safe").add(1);
    obs::instant("control.autopilot.land_safe", "control");
}

double
Autopilot::estimationErrorM() const
{
    return (estimator_.estimate().position - quad_.state().position)
        .norm();
}

double
Autopilot::meanTrackingErrorM(double window) const
{
    double sum = 0.0;
    long count = 0;
    for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
        if (t_ - it->t > window)
            break;
        sum += (it->position - it->target).norm();
        ++count;
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

} // namespace dronedse
