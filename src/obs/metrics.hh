/**
 * @file
 * Process-wide metrics registry: named atomic counters, gauges, and
 * fixed-bucket histograms with a JSON snapshot.
 *
 * This is the one aggregation point for the quantities the paper's
 * studies report — sweep throughput and cache rates (Fig 10/11
 * grids), scheduler deadline misses (§2.1.3), uarch miss rates
 * (Fig 15) — so an experiment reads one snapshot instead of four
 * bespoke stats structs.  Handles returned by the registry are
 * stable for the registry's lifetime; updates are lock-free atomics,
 * so instrumented hot paths pay one relaxed RMW per event.
 *
 * Naming convention (DESIGN.md §10): dot-separated
 * `<module>.<object>.<event>` in lower_snake segments, e.g.
 * `engine.cache.hits`, `control.scheduler.deadline_misses`.
 */

#ifndef DRONEDSE_OBS_METRICS_HH
#define DRONEDSE_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.hh"

namespace dronedse::obs {

/** Monotonic event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram: `bounds` are ascending upper edges; a
 * sample lands in the first bucket whose edge is >= the sample, or
 * in the implicit overflow bucket past the last edge.  Bucket counts
 * and the running sum are atomics, so `record` is wait-free.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void record(double sample);

    const std::vector<double> &bounds() const { return bounds_; }
    /** Per-bucket counts, `bounds().size() + 1` entries. */
    std::vector<std::uint64_t> counts() const;
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * The registry.  `counter`/`gauge`/`histogram` find-or-create by
 * name and return a reference that stays valid for the registry's
 * lifetime (instruments cache the reference, the map is only walked
 * once per call site).  Snapshots walk the maps under the lock but
 * never block updates.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name)
        DDSE_EXCLUDES(mutex_);
    Gauge &gauge(const std::string &name) DDSE_EXCLUDES(mutex_);
    /** `bounds` only applies on first registration of `name`. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds)
        DDSE_EXCLUDES(mutex_);

    /**
     * One JSON object:
     * {"counters": {name: n}, "gauges": {name: v},
     *  "histograms": {name: {"bounds": [...], "counts": [...],
     *                        "count": n, "sum": v}}}
     * Keys are sorted, so equal states serialize identically.
     */
    std::string toJson() const DDSE_EXCLUDES(mutex_);

    /** Write the snapshot to a file; fatal() on I/O failure. */
    void writeJson(const std::string &path) const;

    /** Drop every metric (tests; snapshots are cheap, prefer those). */
    void clear() DDSE_EXCLUDES(mutex_);

  private:
    mutable util::Mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_
        DDSE_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        DDSE_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_
        DDSE_GUARDED_BY(mutex_);
};

/** The process-wide registry every instrument publishes through. */
MetricsRegistry &metrics();

} // namespace dronedse::obs

#endif // DRONEDSE_OBS_METRICS_HH
