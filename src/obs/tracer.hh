/**
 * @file
 * Scoped-span tracer: thread-safe, per-thread buffers, monotonic
 * timestamps, exported as Chrome `chrome://tracing` JSON or a flat
 * per-span CSV.
 *
 * Two levels of gating keep the cost proportional to use:
 *  - compile time: configuring with `-DDRONEDSE_TRACING=OFF` defines
 *    `DRONEDSE_TRACING` to 0 and every instrument below collapses to
 *    an empty inline body (the API keeps compiling, spans are never
 *    recorded);
 *  - run time: spans are only captured while `tracer().setEnabled`
 *    is on, so an uninstrumented run pays one relaxed atomic load
 *    per span site.
 *
 * Spans carry a `track` so wall-clock instruments (thread pool,
 * SLAM phases) and simulated-time instruments (the rate scheduler,
 * whose "time" is the mission clock) never interleave on one
 * timeline: track 1 is wall time, track 2 simulated time.  Chrome
 * renders tracks as separate processes.
 */

#ifndef DRONEDSE_OBS_TRACER_HH
#define DRONEDSE_OBS_TRACER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.hh"

#ifndef DRONEDSE_TRACING
#define DRONEDSE_TRACING 1
#endif

namespace dronedse::obs {

/** Chrome `pid` of wall-clock spans. */
inline constexpr std::uint32_t kWallTrack = 1;
/** Chrome `pid` of simulated-time spans (mission clock). */
inline constexpr std::uint32_t kSimTrack = 2;

/** One captured span or instant marker. */
struct SpanRecord
{
    std::string name;
    std::string category;
    /** Timeline this span lives on (kWallTrack / kSimTrack). */
    std::uint32_t track = kWallTrack;
    /** Capturing thread (sequential registration order). */
    std::uint32_t thread = 0;
    /** 'X' = complete span, 'i' = instant marker. */
    char phase = 'X';
    /** Start, microseconds since the tracer epoch. */
    double startUs = 0.0;
    /** Duration in microseconds (0 for instants). */
    double durUs = 0.0;
};

/**
 * The tracer.  All member functions are safe from any thread; spans
 * append to a per-thread buffer under that buffer's own mutex, so
 * concurrent capture never contends across threads.
 */
class Tracer
{
  public:
    Tracer();

    bool enabled() const
    {
#if DRONEDSE_TRACING
        return enabled_.load(std::memory_order_relaxed);
#else
        return false;
#endif
    }

    /** No-op when tracing is compiled out. */
    void setEnabled(bool on);

    /** Microseconds since the tracer epoch (monotonic clock). */
    double nowUs() const;

    /** Record a wall-clock span from two monotonic time points. */
    void recordSpan(const char *name, const char *category,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end);

    /** Record an instant marker at "now" on the wall track. */
    void recordInstant(const char *name, const char *category);

    /**
     * Record a span with caller-supplied timestamps on an explicit
     * track — how simulated-time instruments (the rate scheduler)
     * land on their own timeline.
     */
    void recordManual(const char *name, const char *category,
                      std::uint32_t track, double start_us,
                      double dur_us);

    /**
     * Copy of every captured span, sorted by (startUs, thread) so
     * equal captures compare equal regardless of buffer order.
     */
    std::vector<SpanRecord> snapshot() const;

    /** Drop all captured spans (buffers stay registered). */
    void clear();

    /** Chrome trace-event JSON ({"traceEvents": [...]}). */
    std::string toChromeJson() const;

    /** Flat CSV: name,category,track,thread,phase,start_us,dur_us. */
    std::string toCsv() const;

    void writeChromeJson(const std::string &path) const;
    void writeCsv(const std::string &path) const;

  private:
    struct ThreadBuffer
    {
        mutable util::Mutex mutex;
        /** Written once at registration (under `buffersMutex_`),
         *  read-only afterwards — not guarded by `mutex`. */
        std::uint32_t thread = 0;
        std::vector<SpanRecord> spans DDSE_GUARDED_BY(mutex);
    };

    ThreadBuffer &localBuffer() DDSE_EXCLUDES(buffersMutex_);
    void append(SpanRecord record);

    std::chrono::steady_clock::time_point epoch_;
    std::atomic<bool> enabled_{false};
    mutable util::Mutex buffersMutex_;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_
        DDSE_GUARDED_BY(buffersMutex_);
};

/** The process-wide tracer every instrument records through. */
Tracer &tracer();

/**
 * RAII span: captures [construction, destruction) on the wall track
 * when tracing is compiled in and enabled.  `name` and `category`
 * must outlive the span (string literals at every call site).
 */
class ScopedSpan
{
  public:
#if DRONEDSE_TRACING
    ScopedSpan(const char *name, const char *category)
        : active_(tracer().enabled()), name_(name),
          category_(category)
    {
        if (active_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedSpan()
    {
        if (active_) {
            tracer().recordSpan(name_, category_, start_,
                                std::chrono::steady_clock::now());
        }
    }
#else
    ScopedSpan(const char *, const char *) {}
#endif

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

#if DRONEDSE_TRACING
  private:
    bool active_;
    const char *name_;
    const char *category_;
    std::chrono::steady_clock::time_point start_;
#endif
};

/** Instant marker helper (compiled out with tracing). */
inline void
instant(const char *name, const char *category)
{
#if DRONEDSE_TRACING
    if (tracer().enabled())
        tracer().recordInstant(name, category);
#else
    (void)name;
    (void)category;
#endif
}

} // namespace dronedse::obs

#endif // DRONEDSE_OBS_TRACER_HH
