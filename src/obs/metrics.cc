#include "obs/metrics.hh"

#include <algorithm>
#include <cstdio>

#include "util/json.hh"
#include "util/logging.hh"

namespace dronedse::obs {

namespace {

// Snapshot spellings are pinned by the util/json canonical writer:
// %.17g doubles (round-trip exact) and the shared string escape.
std::string
num(double v)
{
    return jsonNumber(v);
}

std::string
quoted(const std::string &s)
{
    return jsonQuote(s);
}

void
atomicAddDouble(std::atomic<double> &target, double delta)
{
    double expected = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(expected, expected + delta,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        fatal("Histogram: bucket bounds must be ascending");
}

void
Histogram::record(double sample)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), sample);
    const std::size_t bucket =
        static_cast<std::size_t>(it - bounds_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(sum_, sample);
}

std::vector<std::uint64_t>
Histogram::counts() const
{
    std::vector<std::uint64_t> out;
    out.reserve(buckets_.size());
    for (const auto &bucket : buckets_)
        out.push_back(bucket.load(std::memory_order_relaxed));
    return out;
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    util::MutexLock lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    util::MutexLock lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    util::MutexLock lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

std::string
MetricsRegistry::toJson() const
{
    util::MutexLock lock(mutex_);
    std::string out = "{\"counters\": {";
    bool first = true;
    for (const auto &[name, counter] : counters_) {
        if (!first)
            out += ", ";
        first = false;
        out += quoted(name) + ": " + std::to_string(counter->value());
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto &[name, gauge] : gauges_) {
        if (!first)
            out += ", ";
        first = false;
        out += quoted(name) + ": " + num(gauge->value());
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto &[name, histogram] : histograms_) {
        if (!first)
            out += ", ";
        first = false;
        out += quoted(name) + ": {\"bounds\": [";
        const auto &bounds = histogram->bounds();
        for (std::size_t i = 0; i < bounds.size(); ++i)
            out += (i ? ", " : "") + num(bounds[i]);
        out += "], \"counts\": [";
        const auto counts = histogram->counts();
        for (std::size_t i = 0; i < counts.size(); ++i)
            out += (i ? ", " : "") + std::to_string(counts[i]);
        out += "], \"count\": " + std::to_string(histogram->count());
        out += ", \"sum\": " + num(histogram->sum()) + "}";
    }
    out += "}}";
    return out;
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("MetricsRegistry::writeJson: cannot open '" + path +
              "'");
    const std::string doc = toJson() + "\n";
    const std::size_t written =
        std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (written != doc.size())
        fatal("MetricsRegistry::writeJson: short write to '" + path +
              "'");
}

void
MetricsRegistry::clear()
{
    util::MutexLock lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace dronedse::obs
