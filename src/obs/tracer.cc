#include "obs/tracer.hh"

#include <algorithm>
#include <cstdio>

#include "util/csv.hh"
#include "util/logging.hh"

namespace dronedse::obs {

namespace {

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return std::string(buf);
}

std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

void
writeFile(const std::string &path, const std::string &doc,
          const char *who)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal(std::string(who) + ": cannot open '" + path + "'");
    const std::size_t written =
        std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (written != doc.size())
        fatal(std::string(who) + ": short write to '" + path + "'");
}

} // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

void
Tracer::setEnabled(bool on)
{
#if DRONEDSE_TRACING
    enabled_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
}

double
Tracer::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

Tracer::ThreadBuffer &
Tracer::localBuffer()
{
    // One registration per (tracer, thread); the shared_ptr keeps
    // the buffer readable after the thread exits (pool teardown).
    thread_local std::shared_ptr<ThreadBuffer> buffer;
    thread_local Tracer *owner = nullptr;
    if (!buffer || owner != this) {
        buffer = std::make_shared<ThreadBuffer>();
        owner = this;
        util::MutexLock lock(buffersMutex_);
        buffer->thread = static_cast<std::uint32_t>(buffers_.size());
        buffers_.push_back(buffer);
    }
    return *buffer;
}

void
Tracer::append(SpanRecord record)
{
    ThreadBuffer &buffer = localBuffer();
    record.thread = buffer.thread;
    util::MutexLock lock(buffer.mutex);
    buffer.spans.push_back(std::move(record));
}

void
Tracer::recordSpan(const char *name, const char *category,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end)
{
#if DRONEDSE_TRACING
    if (!enabled())
        return;
    SpanRecord record;
    record.name = name;
    record.category = category;
    record.track = kWallTrack;
    record.phase = 'X';
    record.startUs =
        std::chrono::duration<double, std::micro>(start - epoch_)
            .count();
    record.durUs =
        std::chrono::duration<double, std::micro>(end - start)
            .count();
    append(std::move(record));
#else
    (void)name;
    (void)category;
    (void)start;
    (void)end;
#endif
}

void
Tracer::recordInstant(const char *name, const char *category)
{
#if DRONEDSE_TRACING
    if (!enabled())
        return;
    SpanRecord record;
    record.name = name;
    record.category = category;
    record.track = kWallTrack;
    record.phase = 'i';
    record.startUs = nowUs();
    append(std::move(record));
#else
    (void)name;
    (void)category;
#endif
}

void
Tracer::recordManual(const char *name, const char *category,
                     std::uint32_t track, double start_us,
                     double dur_us)
{
#if DRONEDSE_TRACING
    if (!enabled())
        return;
    SpanRecord record;
    record.name = name;
    record.category = category;
    record.track = track;
    record.phase = 'X';
    record.startUs = start_us;
    record.durUs = dur_us;
    append(std::move(record));
#else
    (void)name;
    (void)category;
    (void)track;
    (void)start_us;
    (void)dur_us;
#endif
}

std::vector<SpanRecord>
Tracer::snapshot() const
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        util::MutexLock lock(buffersMutex_);
        buffers = buffers_;
    }
    std::vector<SpanRecord> out;
    for (const auto &buffer : buffers) {
        util::MutexLock lock(buffer->mutex);
        out.insert(out.end(), buffer->spans.begin(),
                   buffer->spans.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SpanRecord &a, const SpanRecord &b) {
                         if (a.startUs != b.startUs)
                             return a.startUs < b.startUs;
                         return a.thread < b.thread;
                     });
    return out;
}

void
Tracer::clear()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        util::MutexLock lock(buffersMutex_);
        buffers = buffers_;
    }
    for (const auto &buffer : buffers) {
        util::MutexLock lock(buffer->mutex);
        buffer->spans.clear();
    }
}

std::string
Tracer::toChromeJson() const
{
    const std::vector<SpanRecord> spans = snapshot();
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    for (const SpanRecord &span : spans) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"name\": " + quoted(span.name);
        out += ", \"cat\": " + quoted(span.category);
        out += ", \"ph\": \"";
        out += span.phase;
        out += "\", \"ts\": " + num(span.startUs);
        if (span.phase == 'X')
            out += ", \"dur\": " + num(span.durUs);
        else
            out += ", \"s\": \"t\"";
        out += ", \"pid\": " + std::to_string(span.track);
        out += ", \"tid\": " + std::to_string(span.thread);
        out += "}";
    }
    out += "], \"displayTimeUnit\": \"ms\"}";
    return out;
}

std::string
Tracer::toCsv() const
{
    CsvWriter csv({"name", "category", "track", "thread", "phase",
                   "start_us", "dur_us"});
    for (const SpanRecord &span : snapshot()) {
        csv.addRow({span.name, span.category,
                    std::to_string(span.track),
                    std::to_string(span.thread),
                    std::string(1, span.phase), num(span.startUs),
                    num(span.durUs)});
    }
    return csv.str();
}

void
Tracer::writeChromeJson(const std::string &path) const
{
    writeFile(path, toChromeJson() + "\n",
              "Tracer::writeChromeJson");
}

void
Tracer::writeCsv(const std::string &path) const
{
    writeFile(path, toCsv(), "Tracer::writeCsv");
}

Tracer &
tracer()
{
    static Tracer instance;
    return instance;
}

} // namespace dronedse::obs
