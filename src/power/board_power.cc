#include "power/board_power.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace dronedse {

const char *
boardStateName(BoardState state)
{
    switch (state) {
      case BoardState::Disconnected:
        return "disconnected";
      case BoardState::Autopilot:
        return "autopilot";
      case BoardState::AutopilotSlamIdle:
        return "autopilot+slam(idle)";
      case BoardState::AutopilotSlamFlying:
        return "autopilot+slam(flying)";
      case BoardState::Shutdown:
        return "shutdown(peripherals)";
    }
    panic("boardStateName: invalid state");
}

Quantity<Watts>
boardStateMeanW(BoardState state)
{
    // Section 5.1 measurements.
    switch (state) {
      case BoardState::Disconnected:
        return Quantity<Watts>(0.0);
      case BoardState::Autopilot:
        return Quantity<Watts>(3.39);
      case BoardState::AutopilotSlamIdle:
        return Quantity<Watts>(4.05);
      case BoardState::AutopilotSlamFlying:
        return Quantity<Watts>(4.56);
      case BoardState::Shutdown:
        return Quantity<Watts>(1.1); // Navio2 + telemetry on the rail
    }
    panic("boardStateMeanW: invalid state");
}

Quantity<Watts>
PowerTrace::meanW(double t0, double t1) const
{
    double sum = 0.0;
    long count = 0;
    for (const auto &s : samples) {
        if (s.t >= t0 && s.t < t1) {
            sum += s.powerW;
            ++count;
        }
    }
    return Quantity<Watts>(
        count > 0 ? sum / static_cast<double>(count) : 0.0);
}

Quantity<Watts>
PowerTrace::maxW(double t0, double t1) const
{
    double best = 0.0;
    for (const auto &s : samples)
        if (s.t >= t0 && s.t < t1)
            best = std::max(best, s.powerW);
    return Quantity<Watts>(best);
}

Quantity<WattHours>
PowerTrace::energyWh() const
{
    Quantity<WattHours> wh{};
    for (std::size_t i = 1; i < samples.size(); ++i) {
        const Quantity<Seconds> dt(samples[i].t - samples[i - 1].t);
        wh += (Quantity<Watts>(samples[i - 1].powerW) * dt)
                  .to<WattHours>();
    }
    return wh;
}

PowerTrace
boardPowerTrace(const std::vector<BoardPhase> &script,
                Quantity<Hertz> sample_rate, std::uint64_t seed)
{
    const double rate_hz = sample_rate.value();
    if (rate_hz <= 0.0)
        fatal("boardPowerTrace: rate must be positive");

    PowerTrace trace;
    Rng rng(seed);
    double t = 0.0;
    const double dt = 1.0 / rate_hz;
    for (const auto &phase : script) {
        trace.phases.emplace_back(t, boardStateName(phase.state));
        const double mean = boardStateMeanW(phase.state).value();
        const long steps =
            std::lround(phase.durationS * rate_hz);
        for (long i = 0; i < steps; ++i) {
            double p = mean;
            if (phase.state == BoardState::AutopilotSlamFlying) {
                // Bursty: frame-processing spikes up to ~5 W.
                p += 0.25 * std::sin(2.0 * M_PI * 0.4 * t) +
                     std::max(0.0, rng.gaussian(0.0, 0.25));
                p = std::min(p, 5.0);
            } else if (phase.state != BoardState::Disconnected) {
                p += rng.gaussian(0.0, 0.05);
            }
            trace.samples.push_back({t, std::max(0.0, p)});
            t += dt;
        }
    }
    return trace;
}

std::vector<BoardPhase>
figure16aScript()
{
    // Figure 16a: disconnected -> autopilot -> +SLAM idle ->
    // +SLAM flying -> Pi shutdown (peripherals still powered).
    return {{BoardState::Disconnected, 30.0},
            {BoardState::Autopilot, 150.0},
            {BoardState::AutopilotSlamIdle, 120.0},
            {BoardState::AutopilotSlamFlying, 400.0},
            {BoardState::Shutdown, 100.0}};
}

} // namespace dronedse
