/**
 * @file
 * Companion-computer power states (Figure 16a): the Raspberry Pi's
 * measured draw while idle, running the autopilot, running autopilot
 * + SLAM on the bench, and with SLAM actively processing in flight.
 */

#ifndef DRONEDSE_POWER_BOARD_POWER_HH
#define DRONEDSE_POWER_BOARD_POWER_HH

#include <string>
#include <vector>

#include "util/quantity.hh"
#include "util/rng.hh"

namespace dronedse {

/** Compute-board activity states in the Figure 16a timeline. */
enum class BoardState
{
    Disconnected,
    /** Pi booted, autopilot running. */
    Autopilot,
    /** Autopilot + SLAM loaded, drone not flying (SLAM idle). */
    AutopilotSlamIdle,
    /** Autopilot + SLAM actively processing during flight. */
    AutopilotSlamFlying,
    /** Pi shut down; rail still powers Navio2 and peripherals. */
    Shutdown,
};

/** Human-readable state name. */
const char *boardStateName(BoardState state);

/**
 * Mean power of a state — the paper's measured averages:
 * autopilot 3.39 W, +SLAM idle 4.05 W, +SLAM flying 4.56 W (peaks
 * to ~5 W).
 */
Quantity<Watts> boardStateMeanW(BoardState state);

/** One phase of a scripted board timeline. */
struct BoardPhase
{
    BoardState state = BoardState::Autopilot;
    double durationS = 10.0;
};

/** One sample of a power trace. */
struct PowerSample
{
    double t = 0.0;
    double powerW = 0.0;
};

/**
 * A sampled power trace with phase annotations.  Raw samples are the
 * trace/CSV boundary; the aggregate queries are typed.
 */
struct PowerTrace
{
    std::vector<PowerSample> samples;
    /** (start time, label) per phase. */
    std::vector<std::pair<double, std::string>> phases;

    /** Mean power between t0 and t1 (seconds on the trace axis). */
    Quantity<Watts> meanW(double t0, double t1) const;

    /** Max power between t0 and t1 (seconds on the trace axis). */
    Quantity<Watts> maxW(double t0, double t1) const;

    /** Energy integrated over the whole trace. */
    Quantity<WattHours> energyWh() const;
};

/**
 * Generate the Figure 16a RPi trace for a phase script, sampled at
 * `sample_rate` with measured-looking fluctuation.
 */
PowerTrace boardPowerTrace(const std::vector<BoardPhase> &script,
                           Quantity<Hertz> sample_rate = Quantity<Hertz>(2.0),
                           std::uint64_t seed = 5);

/** The paper's Figure 16a phase script. */
std::vector<BoardPhase> figure16aScript();

} // namespace dronedse

#endif // DRONEDSE_POWER_BOARD_POWER_HH
