#include "power/drone_power.hh"

#include <algorithm>

namespace dronedse {

FlightPowerResult
flyMeasurementFlight(const FlightPowerConfig &config)
{
    FlightPowerResult result;
    const Quantity<Watts> electronics =
        config.computePowerW + config.supportPowerW;

    // Mission: climb to 2 m, hover, fly an aggressive box, return,
    // land (descend to 0.2 m and hold).
    const double hold = config.hoverS.value();
    std::vector<Waypoint> mission = {
        {{0, 0, 2}, 0.0, 0.4, hold},
        {{6, 0, 2.5}, 0.0, 0.6, 0.0},
        {{6, 6, 1.5}, 1.6, 0.6, 0.0},
        {{0, 6, 2.5}, 3.1, 0.6, 0.0},
        {{0, 0, 2}, 0.0, 0.5, 5.0},
        {{0, 0, 0.2}, 0.0, 0.3, 1e9},
    };

    AutopilotConfig ap_config;
    ap_config.wind.gustIntensity = config.gustIntensity;
    Autopilot autopilot(config.airframe, std::move(mission),
                        ap_config);

    LipoPack pack(config.cells, config.capacityMah);

    // Idle on the ground: motors off, electronics on.
    double t = 0.0;
    const Quantity<Seconds> sample_dt(0.1);
    result.trace.phases.emplace_back(t, "idle (motors off)");
    for (; t < config.idleS.value(); t += sample_dt.value()) {
        pack.discharge(electronics, sample_dt);
        result.trace.samples.push_back({t, electronics.value()});
    }

    // Flight: run the closed loop, sampling power every 100 ms.
    result.trace.phases.emplace_back(t, "takeoff + hover");
    bool maneuvering_noted = false;
    double hover_sum = 0.0, flight_sum = 0.0;
    long hover_n = 0, flight_n = 0;

    const double flight_duration = config.idleS.value() + hold +
                                   config.maneuverS.value() + 45.0;
    while (t < flight_duration) {
        autopilot.run(sample_dt.value());
        // The rigid-body simulator works in raw doubles; wrap its
        // electrical power at this boundary.
        const Quantity<Watts> power =
            Quantity<Watts>(autopilot.quad().electricalPowerW()) +
            electronics;
        pack.discharge(power, sample_dt);
        result.trace.samples.push_back({t, power.value()});

        const std::size_t wp = autopilot.navigator().currentIndex();
        if (wp >= 1 && wp <= 3) {
            if (!maneuvering_noted) {
                result.trace.phases.emplace_back(t, "maneuvering");
                maneuvering_noted = true;
            }
            result.maneuverPeakW =
                std::max(result.maneuverPeakW, power);
        } else if (wp == 0 &&
                   autopilot.quad().state().position.z > 1.5) {
            hover_sum += power.value();
            ++hover_n;
        }
        if (autopilot.quad().state().position.z > 0.5) {
            flight_sum += power.value();
            ++flight_n;
        }
        if (autopilot.quad().upsideDown())
            result.stableFlight = false;
        t += sample_dt.value();
    }
    result.trace.phases.emplace_back(t, "landed");

    result.hoverMeanW = Quantity<Watts>(
        hover_n > 0 ? hover_sum / static_cast<double>(hover_n) : 0.0);
    result.flightMeanW = Quantity<Watts>(
        flight_n > 0 ? flight_sum / static_cast<double>(flight_n)
                     : 0.0);
    result.finalSoc = pack.stateOfCharge();
    result.energyDrawnWh = pack.drawnEnergyWh();
    return result;
}

} // namespace dronedse
