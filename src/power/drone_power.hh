/**
 * @file
 * Whole-drone power trace (Figure 16b): the closed-loop flight
 * simulator flies a scripted mission while propulsion electrical
 * power, compute power, and battery state of charge are logged —
 * the oscilloscope-on-the-battery measurement of the paper.
 */

#ifndef DRONEDSE_POWER_DRONE_POWER_HH
#define DRONEDSE_POWER_DRONE_POWER_HH

#include "control/autopilot.hh"
#include "physics/lipo.hh"
#include "power/board_power.hh"

namespace dronedse {

/** Configuration of the Figure 16b flight. */
struct FlightPowerConfig
{
    /** Airframe (defaults to the paper's 450 mm drone). */
    QuadrotorParams airframe{};
    /** Battery (3S 3000 mAh, the open-source drone's pack). */
    int cells = 3;
    double capacityMah = 3000.0;
    /** Compute-board power added on top of propulsion (W). */
    double computePowerW = 4.56 + 0.75; // RPi w/ SLAM + Navio2
    /** Support electronics (telemetry, RC, GPS) (W). */
    double supportPowerW = 1.5;
    /** Idle-on-ground time before takeoff (s). */
    double idleS = 10.0;
    /** Hover segment duration (s). */
    double hoverS = 30.0;
    /** Maneuver segment duration (s). */
    double maneuverS = 20.0;
    /** Wind gusts during the flight (m/s RMS). */
    double gustIntensity = 0.8;
};

/** Outcome of the simulated measurement flight. */
struct FlightPowerResult
{
    PowerTrace trace;
    /** Mean total power while airborne (W). */
    double flightMeanW = 0.0;
    /** Peak power during the maneuver segment (W). */
    double maneuverPeakW = 0.0;
    /** Mean power while hovering (W). */
    double hoverMeanW = 0.0;
    /** Battery state of charge at the end. */
    double finalSoc = 1.0;
    /** Energy drawn (Wh). */
    double energyDrawnWh = 0.0;
    /** True if the vehicle stayed upright throughout. */
    bool stableFlight = true;
};

/**
 * Fly the Figure 16b profile — idle, takeoff, hover, aggressive
 * waypoint maneuvering, return, land — and log total power.
 */
FlightPowerResult flyMeasurementFlight(
    const FlightPowerConfig &config = {});

} // namespace dronedse

#endif // DRONEDSE_POWER_DRONE_POWER_HH
