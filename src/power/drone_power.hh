/**
 * @file
 * Whole-drone power trace (Figure 16b): the closed-loop flight
 * simulator flies a scripted mission while propulsion electrical
 * power, compute power, and battery state of charge are logged —
 * the oscilloscope-on-the-battery measurement of the paper.
 */

#ifndef DRONEDSE_POWER_DRONE_POWER_HH
#define DRONEDSE_POWER_DRONE_POWER_HH

#include "control/autopilot.hh"
#include "physics/lipo.hh"
#include "power/board_power.hh"

namespace dronedse {

/** Configuration of the Figure 16b flight. */
struct FlightPowerConfig
{
    /** Airframe (defaults to the paper's 450 mm drone). */
    QuadrotorParams airframe{};
    /** Battery (3S 3000 mAh, the open-source drone's pack). */
    int cells = 3;
    Quantity<MilliampHours> capacityMah{3000.0};
    /** Compute-board power added on top of propulsion. */
    Quantity<Watts> computePowerW{4.56 + 0.75}; // RPi w/ SLAM + Navio2
    /** Support electronics (telemetry, RC, GPS). */
    Quantity<Watts> supportPowerW{1.5};
    /** Idle-on-ground time before takeoff. */
    Quantity<Seconds> idleS{10.0};
    /** Hover segment duration. */
    Quantity<Seconds> hoverS{30.0};
    /** Maneuver segment duration. */
    Quantity<Seconds> maneuverS{20.0};
    /** Wind gusts during the flight (m/s RMS). */
    double gustIntensity = 0.8;
};

/** Outcome of the simulated measurement flight. */
struct FlightPowerResult
{
    PowerTrace trace;
    /** Mean total power while airborne. */
    Quantity<Watts> flightMeanW{};
    /** Peak power during the maneuver segment. */
    Quantity<Watts> maneuverPeakW{};
    /** Mean power while hovering. */
    Quantity<Watts> hoverMeanW{};
    /** Battery state of charge at the end. */
    double finalSoc = 1.0;
    /** Energy drawn. */
    Quantity<WattHours> energyDrawnWh{};
    /** True if the vehicle stayed upright throughout. */
    bool stableFlight = true;
};

/**
 * Fly the Figure 16b profile — idle, takeoff, hover, aggressive
 * waypoint maneuvering, return, land — and log total power.
 */
FlightPowerResult flyMeasurementFlight(
    const FlightPowerConfig &config = {});

} // namespace dronedse

#endif // DRONEDSE_POWER_DRONE_POWER_HH
