#include "codesign/roofline.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dronedse::codesign {

namespace {

constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(SlamPhase::NumPhases);
constexpr std::size_t kNumPlatforms =
    static_cast<std::size_t>(PlatformKind::NumPlatforms);

/** DRAM transfer granularity: one LLC line. */
constexpr double kLineBytes = 64.0;

/**
 * Peak/bandwidth scale of each platform relative to the simulated
 * host core.  These are the fitted accelerator rooflines: wide GPU
 * lanes but a shared LPDDR4 bus (TX2), deep pipelines over BRAM-fed
 * datapaths (FPGA), and a Navion-style memory-specialized datapath
 * (ASIC).  The factors are fitted so every platform's roof lies at
 * or above its Table 4 calibrated phase throughput — a roofline is
 * an upper bound, and RooflineModel's constructor reports the gap.
 */
struct PlatformFactors
{
    double peak;
    double bandwidth;
};

constexpr std::array<PlatformFactors, kNumPlatforms> kFactors = {{
    {1.0, 1.0},   // RPi: the calibrated host itself
    {16.0, 9.0},  // TX2
    {60.0, 55.0}, // FPGA
    {50.0, 45.0}, // ASIC
}};

/** Arithmetic intensity from one characterization run. */
double
fitIntensity(const PerfCounters &counters)
{
    const double dram_bytes = std::max(
        1.0, static_cast<double>(counters.llcMisses) * kLineBytes);
    return static_cast<double>(counters.instructions) / dram_bytes;
}

} // namespace

WorkloadProfile
streamingKernelProfile()
{
    WorkloadProfile p;
    p.name = "roofline.streaming";
    // L1-resident stream: every access hits, so cycles/instruction
    // measures the core's issue behaviour, not the memory system.
    p.footprintBytes = 16 * 1024;
    p.sequentialFraction = 1.0;
    p.hotRegionBytes = 16 * 1024;
    p.hotFraction = 1.0;
    p.memoryFraction = 0.25;
    p.branchFraction = 0.05;
    p.loopBranchFraction = 0.99;
    p.loopBodyLength = 64;
    p.addressBase = 0x70000000;
    p.branchSites = 8;
    return p;
}

WorkloadProfile
pointerChaseKernelProfile()
{
    WorkloadProfile p;
    p.name = "roofline.chase";
    // Cold gathers over a footprint that dwarfs the LLC: nearly
    // every load misses to DRAM, so lines/cycle measures sustainable
    // bandwidth.
    p.footprintBytes = 64ULL * 1024 * 1024;
    p.sequentialFraction = 0.0;
    p.hotRegionBytes = 64ULL * 1024 * 1024;
    p.hotFraction = 0.0;
    p.memoryFraction = 0.6;
    p.branchFraction = 0.05;
    p.loopBranchFraction = 0.95;
    p.loopBodyLength = 16;
    p.addressBase = 0x80000000;
    p.branchSites = 16;
    return p;
}

WorkloadProfile
phaseKernelProfile(SlamPhase phase)
{
    WorkloadProfile p;
    switch (phase) {
      case SlamPhase::FeatureExtraction:
        // Image pyramid streaming: sequential over a buffer larger
        // than the LLC, light reuse.
        p.name = "roofline.feature";
        p.footprintBytes = 4ULL * 1024 * 1024;
        p.sequentialFraction = 0.95;
        p.hotRegionBytes = 256 * 1024;
        p.hotFraction = 0.5;
        p.memoryFraction = 0.35;
        p.branchFraction = 0.12;
        p.loopBranchFraction = 0.95;
        p.loopBodyLength = 32;
        p.addressBase = 0x20000000;
        p.branchSites = 64;
        return p;

      case SlamPhase::Matching:
        // Descriptor popcount loops: heavy compute per byte, the
        // candidate descriptors LLC-resident after first touch.
        p.name = "roofline.matching";
        p.footprintBytes = 512 * 1024;
        p.sequentialFraction = 0.5;
        p.hotRegionBytes = 192 * 1024;
        p.hotFraction = 0.95;
        p.memoryFraction = 0.3;
        p.branchFraction = 0.2;
        p.loopBranchFraction = 0.85;
        p.loopBodyLength = 12;
        p.addressBase = 0x28000000;
        p.branchSites = 128;
        return p;

      case SlamPhase::Tracking:
        // PnP on the current frame: a small, cache-resident state.
        p.name = "roofline.tracking";
        p.footprintBytes = 48 * 1024;
        p.sequentialFraction = 0.8;
        p.hotRegionBytes = 48 * 1024;
        p.hotFraction = 1.0;
        p.memoryFraction = 0.25;
        p.branchFraction = 0.15;
        p.loopBranchFraction = 0.9;
        p.loopBodyLength = 24;
        p.addressBase = 0x30000000;
        p.branchSites = 64;
        return p;

      case SlamPhase::LocalBa:
        // Local-map gathers: hot covisibility window plus cold map
        // spills.
        p.name = "roofline.local_ba";
        p.footprintBytes = 8ULL * 1024 * 1024;
        p.sequentialFraction = 0.3;
        p.hotRegionBytes = 512 * 1024;
        p.hotFraction = 0.8;
        p.memoryFraction = 0.45;
        p.branchFraction = 0.18;
        p.loopBranchFraction = 0.7;
        p.loopBodyLength = 10;
        p.addressBase = 0x38000000;
        p.branchSites = 512;
        return p;

      case SlamPhase::GlobalBa:
        // Whole-map traversal: the coldest, most gather-heavy phase.
        p.name = "roofline.global_ba";
        p.footprintBytes = 24ULL * 1024 * 1024;
        p.sequentialFraction = 0.2;
        p.hotRegionBytes = 512 * 1024;
        p.hotFraction = 0.6;
        p.memoryFraction = 0.5;
        p.branchFraction = 0.18;
        p.loopBranchFraction = 0.7;
        p.loopBodyLength = 10;
        p.addressBase = 0x48000000;
        p.branchSites = 512;
        return p;

      case SlamPhase::NumPhases:
        break;
    }
    panic("phaseKernelProfile: invalid phase");
}

HostCalibration
calibrateHost(const RooflineCalibrationConfig &config)
{
    if (config.instructions == 0 || config.clockHz <= 0.0)
        fatal("calibrateHost: invalid calibration config");

    HostCalibration cal;
    cal.streaming = runIsolated(streamingKernelProfile(),
                                config.instructions, config.seed);
    cal.chasing = runIsolated(pointerChaseKernelProfile(),
                              config.instructions, config.seed);

    // Peak: instructions/cycle with the memory system out of the
    // picture, at the host clock.
    cal.host.kind = PlatformKind::RPi;
    cal.host.peakOpsPerSec = cal.streaming.ipc() * config.clockHz;

    // Bandwidth: DRAM lines fetched per cycle, at the host clock.
    const double chase_seconds =
        static_cast<double>(cal.chasing.cycles) / config.clockHz;
    cal.host.bandwidthBytesPerSec =
        static_cast<double>(cal.chasing.llcMisses) * kLineBytes /
        chase_seconds;

    for (std::size_t i = 0; i < kNumPhases; ++i) {
        const auto phase = static_cast<SlamPhase>(i);
        cal.phases[i] = runIsolated(phaseKernelProfile(phase),
                                    config.instructions,
                                    config.seed + 1 + i);
        cal.intensityOpsPerByte[i] = fitIntensity(cal.phases[i]);
    }
    return cal;
}

RooflineModel::RooflineModel(const RooflineCalibrationConfig &config)
    : cal_(calibrateHost(config))
{
    for (std::size_t i = 0; i < kNumPlatforms; ++i) {
        rooflines_[i].kind = static_cast<PlatformKind>(i);
        rooflines_[i].peakOpsPerSec =
            cal_.host.peakOpsPerSec * kFactors[i].peak;
        rooflines_[i].bandwidthBytesPerSec =
            cal_.host.bandwidthBytesPerSec * kFactors[i].bandwidth;
    }
}

const RooflineModel &
RooflineModel::shared()
{
    static const RooflineModel model;
    return model;
}

const RooflineSpec &
RooflineModel::roofline(PlatformKind kind) const
{
    const auto idx = static_cast<std::size_t>(kind);
    if (idx >= kNumPlatforms)
        fatal("RooflineModel::roofline: invalid platform");
    return rooflines_[idx];
}

double
RooflineModel::intensity(SlamPhase phase) const
{
    const auto idx = static_cast<std::size_t>(phase);
    if (idx >= kNumPhases)
        fatal("RooflineModel::intensity: invalid phase");
    return cal_.intensityOpsPerByte[idx];
}

double
RooflineModel::attainable(PlatformKind kind, SlamPhase phase) const
{
    return roofline(kind).attainable(intensity(phase));
}

bool
RooflineModel::memoryBound(PlatformKind kind, SlamPhase phase) const
{
    const RooflineSpec &roof = roofline(kind);
    return roof.bandwidthBytesPerSec * intensity(phase) <
           roof.peakOpsPerSec;
}

double
RooflineModel::effectiveThroughput(PlatformKind kind,
                                   SlamPhase phase) const
{
    const double measured =
        platformSpec(kind)
            .phaseThroughput[static_cast<std::size_t>(phase)];
    return std::min(measured, attainable(kind, phase));
}

std::vector<PhaseRooflineReport>
RooflineModel::report(PlatformKind kind) const
{
    std::vector<PhaseRooflineReport> rows;
    rows.reserve(kNumPhases);
    const PlatformSpec &spec = platformSpec(kind);
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        PhaseRooflineReport row;
        row.phase = static_cast<SlamPhase>(i);
        row.intensityOpsPerByte = cal_.intensityOpsPerByte[i];
        row.attainableOpsPerSec =
            attainable(kind, row.phase);
        row.measuredOpsPerSec = spec.phaseThroughput[i];
        row.memoryBound = memoryBound(kind, row.phase);
        row.gap = row.measuredOpsPerSec > 0.0
                      ? row.attainableOpsPerSec / row.measuredOpsPerSec
                      : 0.0;
        rows.push_back(row);
    }
    return rows;
}

} // namespace dronedse::codesign
