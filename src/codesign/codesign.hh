/**
 * @file
 * Automated platform co-design: Table 5 as an optimization result.
 *
 * The paper fixes the compute platform as an input to the design
 * sweep; here a mission profile goes in and the flight-time-optimal
 * compute configuration comes out.  The search space is the cross
 * product {platform kind} x {offload split} x {SLAM frame rate} x
 * {wheelbase} x {battery grid}: the roofline model supplies each
 * configuration's sustainable frame rate and duty cycles, those
 * become a synthetic `ComputeBoardRecord` (weight + duty-cycled
 * power), and the existing `SweepEngine` closes weight/power/flight
 * time over the mission's airframe and battery axes.  Because the
 * engine's determinism contract makes `run(spec).points` identical
 * at any thread count and the selection scan is a fixed-order fold,
 * the recommendation is bit-identical at any `--jobs` count.
 */

#ifndef DRONEDSE_CODESIGN_CODESIGN_HH
#define DRONEDSE_CODESIGN_CODESIGN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "codesign/roofline.hh"
#include "dse/sweep.hh"
#include "engine/engine.hh"
#include "platform/platform.hh"

namespace dronedse::codesign {

/**
 * How the SLAM pipeline is split between the host flight computer
 * (an RPi-class companion board, always present) and the candidate
 * accelerator.
 */
enum class OffloadSplit
{
    /** Everything on the host; the only split the RPi row has. */
    HostOnly = 0,
    /**
     * Bundle adjustment on the accelerator, the front end (feature
     * extraction / matching / tracking) on the host.  The FPGA's
     * BA-only datapath fits a smaller, lighter part.
     */
    AccelBa,
    /** The whole pipeline on the accelerator. */
    AccelAll,
    NumSplits,
};

/** Wire/report name of a split ("host_only", "accel_ba", ...). */
const char *offloadSplitName(OffloadSplit split);

/** Parse a split name; returns false on unknown names. */
bool parseOffloadSplit(const std::string &name, OffloadSplit &out);

/** A mission the server can be asked to recommend a board for. */
struct MissionSpec
{
    std::string name = "mission";
    /** Required SLAM camera rate (Hz). */
    double targetRateHz = 15.0;
    /**
     * Abstract pipeline ops per frame, amortized (local BA runs per
     * keyframe, global BA per loop closure).  Defaults are the
     * canonical EuRoC-like mix; see defaultPerFrameOps().
     */
    std::array<double, static_cast<std::size_t>(SlamPhase::NumPhases)>
        perFrameOps{};
    /** Candidate airframes. */
    std::vector<Quantity<Millimeters>> wheelbasesMm{
        Quantity<Millimeters>(450.0)};
    /** Battery cell counts to search. */
    std::vector<int> cells{3, 4};
    /** Battery capacity grid. */
    Quantity<MilliampHours> capacityLoMah{2000.0};
    Quantity<MilliampHours> capacityHiMah{6000.0};
    Quantity<MilliampHours> capacityStepMah{500.0};
    FlightActivity activity = FlightActivity::Hovering;
    /** Mission payload (camera, gimbal, ...). */
    Quantity<Grams> payloadG{};

    MissionSpec();
};

/** The canonical amortized per-frame op mix. */
std::array<double, static_cast<std::size_t>(SlamPhase::NumPhases)>
defaultPerFrameOps();

/** Candidate SLAM frame rates the search considers (Hz). */
const std::vector<double> &frameRateLadder();

/** One point of the compute-configuration search space. */
struct ComputeConfig
{
    PlatformKind platform = PlatformKind::RPi;
    OffloadSplit split = OffloadSplit::HostOnly;
    /** Chosen SLAM frame rate (Hz). */
    double rateHz = 0.0;
    /** Roofline-capped sustainable frame rate (Hz). */
    double sustainedFps = 0.0;
    /** Fraction of a frame period the host pipeline is busy. */
    double hostDuty = 0.0;
    /** Fraction of a frame period the accelerator is busy. */
    double accelDuty = 0.0;
    /** Host base + host active-duty + accelerator duty power. */
    Quantity<Watts> computePowerW{};
    /** Host board plus accelerator weight. */
    Quantity<Grams> computeWeightG{};
    /** Grid key: "<platform>/<split>/<rate>hz". */
    std::string boardName;
};

/** One solved candidate: a compute config plus its design closure. */
struct CodesignChoice
{
    bool feasible = false;
    ComputeConfig config;
    DesignResult design;
};

/** Everything one mission's search produces. */
struct CodesignOutcome
{
    MissionSpec mission;
    /** The flight-time-optimal configuration (cost tie-broken). */
    CodesignChoice recommended;
    /**
     * Best configuration per platform, Table 5 order — the derived
     * Table 5: rank these by flight time and the paper's column
     * ordering falls out.
     */
    std::array<CodesignChoice,
               static_cast<std::size_t>(PlatformKind::NumPlatforms)>
        perPlatform{};
    /** Best configuration per offload split. */
    std::array<CodesignChoice,
               static_cast<std::size_t>(OffloadSplit::NumSplits)>
        perSplit{};
    /** Roofline-feasible compute configurations searched. */
    std::size_t configCount = 0;
    /** Engine grid points solved. */
    std::size_t gridPoints = 0;
    /**
     * Best roofline-sustained frame rate per platform over its
     * admissible splits, even when no config met the mission rate —
     * the "why is this board missing from the frontier" column.
     */
    std::array<double,
               static_cast<std::size_t>(PlatformKind::NumPlatforms)>
        bestSustainedFps{};
};

/**
 * Near-tie margin for the recommendation: within this much flight
 * time of the optimum, the cheaper platform to integrate and
 * fabricate wins.  This is the paper's FPGA-over-ASIC argument —
 * the ASIC's last fraction of a minute cannot justify fabrication
 * cost — applied symmetrically to every platform.
 */
inline constexpr double kTieMarginMin = 0.75;

/** Host (flight computer) busy-power addition over idle. */
inline constexpr double kHostActiveW = 2.5;

/**
 * The driver: enumerate roofline-feasible compute configurations,
 * close each over the mission's airframe/battery grid through the
 * engine, and pick the flight-time optimum.
 */
class CodesignDriver
{
  public:
    explicit CodesignDriver(engine::SweepEngine &eng,
                            const RooflineModel &model =
                                RooflineModel::shared());

    /** Run the full search for one mission. */
    CodesignOutcome run(const MissionSpec &mission) const;

    /**
     * The search restricted to one platform (all splits/rates) —
     * the fixed-board baseline the property tests compare against.
     */
    CodesignChoice runFixedPlatform(const MissionSpec &mission,
                                    PlatformKind kind) const;

    /**
     * Deterministic enumeration of the mission's compute configs:
     * platform (Table 5 order) x split x rate ladder, keeping only
     * configs whose roofline-sustained rate meets the chosen rate
     * and whose rate meets the mission target.
     */
    std::vector<ComputeConfig>
    enumerateConfigs(const MissionSpec &mission) const;

    /**
     * Roofline-sustained frame rate of one (platform, split) pairing
     * for this mission's per-frame op mix (independent of the chosen
     * rate).
     */
    double sustainedFps(const MissionSpec &mission, PlatformKind kind,
                        OffloadSplit split) const;

    const RooflineModel &model() const { return model_; }

  private:
    engine::SweepEngine &engine_;
    const RooflineModel &model_;
};

/**
 * The mission catalog the example and docs reproduce Table 5 from:
 * the paper's small- and large-drone missions (both of which must
 * select the FPGA, the board the paper assigns), a high-rate
 * inspection mission (front-end offload becomes mandatory), and a
 * nano mission whose optimal board differs by offload split.
 */
std::vector<MissionSpec> paperMissionCatalog();

/** Deterministic pseudo-random mission for property tests. */
MissionSpec seededMission(std::uint64_t seed);

} // namespace dronedse::codesign

#endif // DRONEDSE_CODESIGN_CODESIGN_HH
