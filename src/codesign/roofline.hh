/**
 * @file
 * Roofline model of the Table 5 platforms, calibrated against the
 * trace-driven core simulator instead of copied from a datasheet.
 *
 * Two microkernel profiles run through `runIsolated` fit the host
 * (RPi-class) roofline: an L1-resident streaming kernel measures
 * peak ops/s (IPC at the core clock with no memory stalls), and a
 * pointer-chasing kernel whose footprint dwarfs the LLC measures
 * sustainable DRAM bandwidth (miss lines per cycle).  Five per-phase
 * SLAM workload profiles then measure each `SlamPhase`'s arithmetic
 * intensity — abstract pipeline ops per DRAM byte actually touched —
 * which places every phase on the roofline: attainable throughput is
 * min(peak, bandwidth x intensity), and a phase is memory-bound when
 * the bandwidth roof is the binding one.  Accelerator rooflines are
 * the host roofline scaled by per-platform peak/bandwidth factors
 * (GPU lanes, FPGA pipelines + BRAM, ASIC memory specialization).
 *
 * The measured-vs-roofline gap per phase (attainable / Table 4
 * calibrated throughput) is the report the co-design driver cites
 * when it explains a recommendation.
 */

#ifndef DRONEDSE_CODESIGN_ROOFLINE_HH
#define DRONEDSE_CODESIGN_ROOFLINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "platform/platform.hh"
#include "uarch/core.hh"

namespace dronedse::codesign {

/** One platform's roofline: a flat peak and a bandwidth slope. */
struct RooflineSpec
{
    PlatformKind kind = PlatformKind::RPi;
    /** Compute roof (abstract pipeline ops per second). */
    double peakOpsPerSec = 0.0;
    /** Memory roof slope (DRAM bytes per second). */
    double bandwidthBytesPerSec = 0.0;

    /** Intensity at which the two roofs intersect (ops/byte). */
    double
    ridgeOpsPerByte() const
    {
        return bandwidthBytesPerSec > 0.0
                   ? peakOpsPerSec / bandwidthBytesPerSec
                   : 0.0;
    }

    /** Attainable throughput at a given arithmetic intensity. */
    double
    attainable(double intensity_ops_per_byte) const
    {
        const double memory_roof =
            bandwidthBytesPerSec * intensity_ops_per_byte;
        return memory_roof < peakOpsPerSec ? memory_roof
                                           : peakOpsPerSec;
    }
};

/** Raw host-calibration measurements, kept for reports/tests. */
struct HostCalibration
{
    /** Streaming microkernel counters (peak fit). */
    PerfCounters streaming;
    /** Pointer-chasing microkernel counters (bandwidth fit). */
    PerfCounters chasing;
    /** Per-phase characterization counters (intensity fit). */
    std::array<PerfCounters,
               static_cast<std::size_t>(SlamPhase::NumPhases)>
        phases{};
    /** Fitted host roofline. */
    RooflineSpec host;
    /** Per-phase arithmetic intensity (ops per DRAM byte). */
    std::array<double,
               static_cast<std::size_t>(SlamPhase::NumPhases)>
        intensityOpsPerByte{};
};

/** One row of the per-platform roofline report. */
struct PhaseRooflineReport
{
    SlamPhase phase = SlamPhase::FeatureExtraction;
    /** Arithmetic intensity (a workload property, host-measured). */
    double intensityOpsPerByte = 0.0;
    /** min(peak, bandwidth x intensity) on this platform. */
    double attainableOpsPerSec = 0.0;
    /** Table 4 calibrated throughput on this platform. */
    double measuredOpsPerSec = 0.0;
    /** True when the bandwidth roof binds. */
    bool memoryBound = false;
    /** attainable / measured: how much roofline headroom is unused. */
    double gap = 0.0;
};

/** Calibration knobs; the defaults are the canonical fit. */
struct RooflineCalibrationConfig
{
    /** Events per microkernel / phase characterization run. */
    std::uint64_t instructions = 1000000;
    /** Trace seed (the fit is a pure function of this config). */
    std::uint64_t seed = 17;
    /** Host core clock the cycle counts are converted with (Hz). */
    double clockHz = 1.5e9;
};

/** The streaming (peak-fit) microkernel profile. */
WorkloadProfile streamingKernelProfile();

/** The pointer-chasing (bandwidth-fit) microkernel profile. */
WorkloadProfile pointerChaseKernelProfile();

/** Per-phase SLAM characterization profile. */
WorkloadProfile phaseKernelProfile(SlamPhase phase);

/** Run the microkernels and fit the host roofline + intensities. */
HostCalibration calibrateHost(
    const RooflineCalibrationConfig &config = {});

/**
 * The calibrated roofline model over all four Table 4/5 platforms.
 * Construction is deterministic; `shared()` memoizes the canonical
 * fit so the serve layer and the examples pay for it once.
 */
class RooflineModel
{
  public:
    explicit RooflineModel(
        const RooflineCalibrationConfig &config = {});

    /** Process-wide canonical model (default config). */
    static const RooflineModel &shared();

    const HostCalibration &calibration() const { return cal_; }

    /** This platform's fitted roofline. */
    const RooflineSpec &roofline(PlatformKind kind) const;

    /** Host-measured arithmetic intensity of a phase (ops/byte). */
    double intensity(SlamPhase phase) const;

    /** min(peak, bandwidth x intensity) for a phase on a platform. */
    double attainable(PlatformKind kind, SlamPhase phase) const;

    /** True when the bandwidth roof binds for phase on platform. */
    bool memoryBound(PlatformKind kind, SlamPhase phase) const;

    /**
     * Roofline-capped execution throughput the co-design driver
     * plans with: the Table 4 calibrated phase throughput, clipped
     * from above by the roofline (a platform cannot beat its own
     * memory system no matter what the calibration table says).
     */
    double effectiveThroughput(PlatformKind kind,
                               SlamPhase phase) const;

    /** The full five-row report for one platform. */
    std::vector<PhaseRooflineReport> report(PlatformKind kind) const;

  private:
    HostCalibration cal_;
    std::array<RooflineSpec,
               static_cast<std::size_t>(PlatformKind::NumPlatforms)>
        rooflines_{};
};

} // namespace dronedse::codesign

#endif // DRONEDSE_CODESIGN_ROOFLINE_HH
