#include "codesign/codesign.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dronedse::codesign {

namespace {

constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(SlamPhase::NumPhases);
constexpr std::size_t kNumPlatforms =
    static_cast<std::size_t>(PlatformKind::NumPlatforms);
constexpr std::size_t kNumSplits =
    static_cast<std::size_t>(OffloadSplit::NumSplits);

/** Integration + fabrication cost rank (Table 5). */
int
costScore(PlatformKind kind)
{
    const PlatformSpec &spec = platformSpec(kind);
    return static_cast<int>(spec.integrationCost) +
           static_cast<int>(spec.fabricationCost);
}

/** The splits a platform can actually be configured with. */
std::vector<OffloadSplit>
splitsFor(PlatformKind kind)
{
    switch (kind) {
      case PlatformKind::RPi:
        return {OffloadSplit::HostOnly};
      case PlatformKind::TX2:
      case PlatformKind::Fpga:
        return {OffloadSplit::AccelBa, OffloadSplit::AccelAll};
      case PlatformKind::Asic:
        // Navion-class: a fixed-function full-pipeline chip; it
        // cannot be deployed as a BA-only coprocessor.
        return {OffloadSplit::AccelAll};
      case PlatformKind::NumPlatforms:
        break;
    }
    panic("splitsFor: invalid platform");
}

/** True when `split` places `phase` on the accelerator. */
bool
phaseOnAccel(OffloadSplit split, SlamPhase phase)
{
    switch (split) {
      case OffloadSplit::HostOnly:
        return false;
      case OffloadSplit::AccelBa:
        return phase == SlamPhase::LocalBa ||
               phase == SlamPhase::GlobalBa;
      case OffloadSplit::AccelAll:
        return true;
      case OffloadSplit::NumSplits:
        break;
    }
    panic("phaseOnAccel: invalid split");
}

/**
 * Accelerator overhead for one (platform, split).  Table 5 values
 * for the full parts; the FPGA's BA-only datapath fits a smaller,
 * lighter part (fewer LUTs, no front-end pipeline).
 */
void
accelOverhead(PlatformKind kind, OffloadSplit split,
              Quantity<Watts> &power, Quantity<Grams> &weight)
{
    if (split == OffloadSplit::HostOnly) {
        power = Quantity<Watts>(0.0);
        weight = Quantity<Grams>(0.0);
        return;
    }
    if (kind == PlatformKind::Fpga &&
        split == OffloadSplit::AccelBa) {
        power = Quantity<Watts>(0.25);
        weight = Quantity<Grams>(40.0);
        return;
    }
    const PlatformSpec &spec = platformSpec(kind);
    power = spec.powerOverheadW;
    weight = spec.weightOverheadG;
}

/** Render the deterministic grid key for one config. */
std::string
configBoardName(PlatformKind kind, OffloadSplit split, double rate_hz)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s/%s/%ghz",
                  platformSpec(kind).name.c_str(),
                  offloadSplitName(split), rate_hz);
    return buf;
}

/**
 * Assemble one candidate config from the roofline-predicted phase
 * times.  Does not check rate feasibility; the enumerator does.
 */
ComputeConfig
makeConfig(const MissionSpec &mission, const RooflineModel &model,
           PlatformKind kind, OffloadSplit split, double rate_hz)
{
    ComputeConfig cfg;
    cfg.platform = kind;
    cfg.split = split;
    cfg.rateHz = rate_hz;

    double host_seconds = 0.0, accel_seconds = 0.0;
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        const auto phase = static_cast<SlamPhase>(i);
        const bool on_accel = phaseOnAccel(split, phase);
        const PlatformKind unit =
            on_accel ? kind : PlatformKind::RPi;
        const double throughput =
            model.effectiveThroughput(unit, phase);
        const double seconds = mission.perFrameOps[i] / throughput;
        (on_accel ? accel_seconds : host_seconds) += seconds;
    }
    const double frame_seconds = host_seconds + accel_seconds;
    cfg.sustainedFps =
        frame_seconds > 0.0 ? 1.0 / frame_seconds : 0.0;
    cfg.hostDuty = std::min(1.0, rate_hz * host_seconds);
    cfg.accelDuty = std::min(1.0, rate_hz * accel_seconds);

    Quantity<Watts> accel_power;
    Quantity<Grams> accel_weight;
    accelOverhead(kind, split, accel_power, accel_weight);
    const PlatformSpec &host = platformSpec(PlatformKind::RPi);
    cfg.computePowerW =
        host.powerOverheadW +
        Quantity<Watts>(kHostActiveW * cfg.hostDuty) +
        Quantity<Watts>(accel_power.value() * cfg.accelDuty);
    cfg.computeWeightG = host.weightOverheadG + accel_weight;
    cfg.boardName = configBoardName(kind, split, rate_hz);
    return cfg;
}

/**
 * Practicality gate shared with `bestConfiguration`: a design whose
 * battery exceeds the commercial mass-fraction cap wins flight time
 * on paper only, so the co-design scan skips it the same way the
 * fixed-board search does.
 */
bool
practical(const DesignResult &design)
{
    return design.batteryWeightG <=
           kMaxBatteryMassFraction * design.totalWeightG;
}

/** Max-flight-time fold (first-wins ties): pure per-axis best. */
void
foldMax(CodesignChoice &slot, const CodesignChoice &candidate)
{
    if (!slot.feasible ||
        candidate.design.flightTimeMin.value() >
            slot.design.flightTimeMin.value()) {
        slot = candidate;
    }
}

} // namespace

const char *
offloadSplitName(OffloadSplit split)
{
    switch (split) {
      case OffloadSplit::HostOnly:
        return "host_only";
      case OffloadSplit::AccelBa:
        return "accel_ba";
      case OffloadSplit::AccelAll:
        return "accel_all";
      case OffloadSplit::NumSplits:
        break;
    }
    panic("offloadSplitName: invalid split");
}

bool
parseOffloadSplit(const std::string &name, OffloadSplit &out)
{
    for (std::size_t i = 0; i < kNumSplits; ++i) {
        const auto split = static_cast<OffloadSplit>(i);
        if (name == offloadSplitName(split)) {
            out = split;
            return true;
        }
    }
    return false;
}

std::array<double, kNumPhases>
defaultPerFrameOps()
{
    // Amortized EuRoC-like per-frame mix: feature extraction and
    // matching every frame, local BA per keyframe (~1 in 5), global
    // BA per loop closure (~1 in 40).
    return {5.0e6, 2.0e6, 0.3e6, 0.8e6, 0.05e6};
}

const std::vector<double> &
frameRateLadder()
{
    static const std::vector<double> ladder = {5.0,  10.0, 15.0,
                                               20.0, 30.0, 60.0};
    return ladder;
}

MissionSpec::MissionSpec()
    : perFrameOps(defaultPerFrameOps())
{
}

CodesignDriver::CodesignDriver(engine::SweepEngine &eng,
                               const RooflineModel &model)
    : engine_(eng), model_(model)
{
}

std::vector<ComputeConfig>
CodesignDriver::enumerateConfigs(const MissionSpec &mission) const
{
    std::vector<ComputeConfig> configs;
    for (std::size_t p = 0; p < kNumPlatforms; ++p) {
        const auto kind = static_cast<PlatformKind>(p);
        for (OffloadSplit split : splitsFor(kind)) {
            for (double rate : frameRateLadder()) {
                if (rate < mission.targetRateHz)
                    continue;
                ComputeConfig cfg =
                    makeConfig(mission, model_, kind, split, rate);
                if (cfg.sustainedFps < rate)
                    continue;
                configs.push_back(std::move(cfg));
            }
        }
    }
    return configs;
}

namespace {

/**
 * Close a config list over the mission's airframe/battery grid and
 * fold out the per-axis optima.  Shared by the full search and the
 * fixed-platform baseline so both use the identical scan order.
 */
CodesignOutcome
searchConfigs(engine::SweepEngine &eng, const MissionSpec &mission,
              std::vector<ComputeConfig> configs)
{
    CodesignOutcome outcome;
    outcome.mission = mission;
    outcome.configCount = configs.size();
    if (configs.empty())
        return outcome;

    SweepSpec spec;
    spec.airframes.clear();
    for (const auto wheelbase : mission.wheelbasesMm)
        spec.airframes.push_back(SweepAirframe{wheelbase});
    spec.boards.reserve(configs.size());
    for (const ComputeConfig &cfg : configs) {
        spec.boards.push_back(
            ComputeBoardRecord{cfg.boardName, BoardClass::Improved,
                               cfg.computeWeightG.value(),
                               cfg.computePowerW.value()});
    }
    spec.activities = {mission.activity};
    spec.cells = mission.cells;
    spec.capacityLoMah = mission.capacityLoMah;
    spec.capacityHiMah = mission.capacityHiMah;
    spec.capacityStepMah = mission.capacityStepMah;
    spec.payloadG = mission.payloadG;

    const engine::SweepResult result = eng.run(spec);
    outcome.gridPoints = result.points.size();
    if (result.points.empty())
        return outcome;

    // Grid order: airframe, board, activity, cells, capacity
    // (capacity innermost) — recover each point's board index.
    const std::size_t boards = configs.size();
    const std::size_t per_airframe =
        result.points.size() / spec.airframes.size();
    const std::size_t per_board = per_airframe / boards;

    // Pass 1: per-platform / per-split maxima and the global max.
    double best_minutes = 0.0;
    bool any = false;
    for (std::size_t idx = 0; idx < result.points.size(); ++idx) {
        const DesignResult &design = result.points[idx];
        if (!design.feasible || !practical(design))
            continue;
        const std::size_t board = (idx / per_board) % boards;
        CodesignChoice choice;
        choice.feasible = true;
        choice.config = configs[board];
        choice.design = design;
        foldMax(outcome.perPlatform[static_cast<std::size_t>(
                    choice.config.platform)],
                choice);
        foldMax(outcome.perSplit[static_cast<std::size_t>(
                    choice.config.split)],
                choice);
        const double minutes = design.flightTimeMin.value();
        if (!any || minutes > best_minutes) {
            any = true;
            best_minutes = minutes;
        }
    }
    if (!any)
        return outcome;

    // Pass 2: among configurations within the tie margin of the
    // optimum, prefer the cheapest platform to integrate and
    // fabricate, then the longer flight, then scan order.  Bounding
    // the set first keeps the margin from compounding across a long
    // scan the way a pairwise fold would.
    for (std::size_t idx = 0; idx < result.points.size(); ++idx) {
        const DesignResult &design = result.points[idx];
        if (!design.feasible || !practical(design))
            continue;
        const double minutes = design.flightTimeMin.value();
        if (minutes < best_minutes - kTieMarginMin)
            continue;
        const std::size_t board = (idx / per_board) % boards;
        const ComputeConfig &cfg = configs[board];
        const int cost = costScore(cfg.platform);
        bool take = !outcome.recommended.feasible;
        if (!take) {
            const int incumbent =
                costScore(outcome.recommended.config.platform);
            take = cost < incumbent ||
                   (cost == incumbent &&
                    minutes > outcome.recommended.design
                                  .flightTimeMin.value());
        }
        if (take) {
            outcome.recommended.feasible = true;
            outcome.recommended.config = cfg;
            outcome.recommended.design = design;
        }
    }
    return outcome;
}

} // namespace

double
CodesignDriver::sustainedFps(const MissionSpec &mission,
                             PlatformKind kind,
                             OffloadSplit split) const
{
    return makeConfig(mission, model_, kind, split, 0.0)
        .sustainedFps;
}

CodesignOutcome
CodesignDriver::run(const MissionSpec &mission) const
{
    CodesignOutcome outcome = searchConfigs(
        engine_, mission, enumerateConfigs(mission));
    for (std::size_t p = 0; p < kNumPlatforms; ++p) {
        const auto kind = static_cast<PlatformKind>(p);
        double best = 0.0;
        for (OffloadSplit split : splitsFor(kind))
            best = std::max(best,
                            sustainedFps(mission, kind, split));
        outcome.bestSustainedFps[p] = best;
    }
    return outcome;
}

CodesignChoice
CodesignDriver::runFixedPlatform(const MissionSpec &mission,
                                 PlatformKind kind) const
{
    std::vector<ComputeConfig> configs;
    for (ComputeConfig &cfg : enumerateConfigs(mission)) {
        if (cfg.platform == kind)
            configs.push_back(std::move(cfg));
    }
    const CodesignOutcome outcome =
        searchConfigs(engine_, mission, std::move(configs));
    return outcome.perPlatform[static_cast<std::size_t>(kind)];
}

std::vector<MissionSpec>
paperMissionCatalog()
{
    std::vector<MissionSpec> catalog;

    // The paper's small consumer drone hosting real-time SLAM: the
    // search must select the FPGA (Table 5's small-drone column).
    MissionSpec urban;
    urban.name = "urban_survey_450";
    urban.targetRateHz = 15.0;
    urban.wheelbasesMm = {Quantity<Millimeters>(450.0)};
    urban.cells = {3, 4};
    urban.capacityLoMah = Quantity<MilliampHours>(2000.0);
    urban.capacityHiMah = Quantity<MilliampHours>(6000.0);
    urban.capacityStepMah = Quantity<MilliampHours>(500.0);
    catalog.push_back(urban);

    // The paper's large drone (mapping payload): FPGA again
    // (Table 5's large-drone column).
    MissionSpec cargo;
    cargo.name = "cargo_mapper_800";
    cargo.targetRateHz = 15.0;
    cargo.wheelbasesMm = {Quantity<Millimeters>(800.0)};
    cargo.cells = {4, 6};
    cargo.capacityLoMah = Quantity<MilliampHours>(4000.0);
    cargo.capacityHiMah = Quantity<MilliampHours>(10000.0);
    cargo.capacityStepMah = Quantity<MilliampHours>(1000.0);
    cargo.payloadG = Quantity<Grams>(200.0);
    catalog.push_back(cargo);

    // High-rate inspection: the host front end is bandwidth-bound
    // below the target rate, so BA-only offload is infeasible and
    // the whole pipeline must move onto the accelerator.
    MissionSpec agile;
    agile.name = "agile_inspect_450";
    agile.targetRateHz = 30.0;
    agile.wheelbasesMm = {Quantity<Millimeters>(450.0)};
    agile.cells = {3, 4};
    agile.capacityLoMah = Quantity<MilliampHours>(2000.0);
    agile.capacityHiMah = Quantity<MilliampHours>(6000.0);
    agile.capacityStepMah = Quantity<MilliampHours>(500.0);
    agile.activity = FlightActivity::Maneuvering;
    catalog.push_back(agile);

    // Nano scout: the mission whose optimal board differs by
    // offload split — under accel_ba the light BA-only FPGA part
    // wins, under accel_all the ASIC's 55 g weight advantage makes
    // it the per-split optimum on a sub-300 g airframe.
    MissionSpec nano;
    nano.name = "nano_scout_250";
    nano.targetRateHz = 10.0;
    nano.wheelbasesMm = {Quantity<Millimeters>(250.0)};
    nano.cells = {2, 3};
    nano.capacityLoMah = Quantity<MilliampHours>(1200.0);
    nano.capacityHiMah = Quantity<MilliampHours>(3000.0);
    nano.capacityStepMah = Quantity<MilliampHours>(300.0);
    catalog.push_back(nano);

    return catalog;
}

MissionSpec
seededMission(std::uint64_t seed)
{
    static const std::array<double, 5> kWheelbases = {
        250.0, 330.0, 450.0, 650.0, 800.0};
    static const std::array<double, 4> kRates = {5.0, 10.0, 15.0,
                                                 20.0};
    Rng rng(seed);

    MissionSpec mission;
    char name[48];
    std::snprintf(name, sizeof name, "seeded_%llu",
                  static_cast<unsigned long long>(seed));
    mission.name = name;
    mission.targetRateHz =
        kRates[static_cast<std::size_t>(rng.uniformInt(0, 3))];

    const auto first =
        static_cast<std::size_t>(rng.uniformInt(0, 4));
    mission.wheelbasesMm = {Quantity<Millimeters>(
        kWheelbases[first])};
    if (rng.bernoulli(0.5)) {
        const auto second =
            static_cast<std::size_t>(rng.uniformInt(0, 4));
        if (second != first) {
            mission.wheelbasesMm.push_back(
                Quantity<Millimeters>(kWheelbases[second]));
        }
    }

    mission.cells = rng.bernoulli(0.5) ? std::vector<int>{3, 4}
                                       : std::vector<int>{3};
    const double lo = 1500.0 + 500.0 * rng.uniformInt(0, 3);
    mission.capacityLoMah = Quantity<MilliampHours>(lo);
    mission.capacityHiMah = Quantity<MilliampHours>(
        lo + 1500.0 + 500.0 * rng.uniformInt(0, 4));
    mission.capacityStepMah = Quantity<MilliampHours>(500.0);
    mission.activity = rng.bernoulli(0.3)
                           ? FlightActivity::Maneuvering
                           : FlightActivity::Hovering;
    mission.payloadG =
        Quantity<Grams>(50.0 * rng.uniformInt(0, 4));
    return mission;
}

} // namespace dronedse::codesign
