/**
 * @file
 * Wind environment: steady wind plus Ornstein-Uhlenbeck gusts, the
 * "unpredictable effects compensated by the inner-loop control"
 * (paper Table 1: wind gusts, local disturbance, atmospheric
 * turbulence).
 */

#ifndef DRONEDSE_SIM_ENVIRONMENT_HH
#define DRONEDSE_SIM_ENVIRONMENT_HH

#include "util/rng.hh"
#include "util/vec3.hh"

namespace dronedse {

/** Wind field parameters. */
struct WindParams
{
    /** Steady world-frame wind (m/s). */
    Vec3 steady{};
    /** RMS gust intensity (m/s). */
    double gustIntensity = 0.0;
    /** Gust correlation time (s). */
    double gustCorrelationS = 1.0;
};

/** Stateful wind generator (deterministic per seed). */
class WindField
{
  public:
    explicit WindField(WindParams params = {}, std::uint64_t seed = 1);

    /** Advance the gust process and return the wind at the vehicle. */
    Vec3 sample(double dt);

    /** Current wind without advancing. */
    Vec3 current() const { return params_.steady + gust_; }

  private:
    WindParams params_;
    Rng rng_;
    Vec3 gust_{};
};

} // namespace dronedse

#endif // DRONEDSE_SIM_ENVIRONMENT_HH
