/**
 * @file
 * Six-degree-of-freedom quadrotor dynamics with first-order motor
 * response — the physical plant behind the inner-loop control study
 * (paper Section 2.1.3: the inner loop is bounded by the physical
 * response of the drone, not by computation).
 *
 * X configuration:
 *   motor 0: front-right, CW     motor 2: front-left,  CCW
 *   motor 1: back-left,   CW     motor 3: back-right,  CCW
 */

#ifndef DRONEDSE_SIM_QUADROTOR_HH
#define DRONEDSE_SIM_QUADROTOR_HH

#include <array>

#include "dse/design_point.hh"
#include "sim/rigid_body.hh"
#include "util/mat3.hh"

namespace dronedse {

/** Physical parameters of the simulated airframe. */
struct QuadrotorParams
{
    /** All-up mass (kg). */
    double massKg = 1.071;
    /** Diagonal body inertia (kg m^2). */
    Vec3 inertiaDiag{0.011, 0.011, 0.021};
    /** Arm length from hub to motor (m). */
    double armLengthM = 0.225;
    /** Propeller diameter (inches), for power accounting. */
    double propDiameterIn = 10.0;
    /** Maximum thrust per motor (N). */
    double maxThrustPerMotorN = 5.25;
    /** First-order motor/ESC response time constant (s). */
    double motorTimeConstantS = 0.02;
    /** Reaction (yaw) torque per newton of thrust (m). */
    double yawTorquePerThrust = 0.016;
    /** Linear aerodynamic drag coefficient (N per (m/s)^2). */
    double dragCoefficient = 0.12;

    /** Airframe hover thrust per motor (N). */
    double hoverThrustPerMotorN() const;

    /**
     * Derive parameters from a solved design point (mass, arm from
     * wheelbase, max thrust from TWR).
     */
    static QuadrotorParams fromDesign(const DesignResult &design);
};

/** The simulated plant. */
class Quadrotor
{
  public:
    explicit Quadrotor(QuadrotorParams params = {});

    /** Physical parameters. */
    const QuadrotorParams &params() const { return params_; }

    /** Current true state. */
    const RigidBodyState &state() const { return state_; }

    /** Overwrite the state (test setup / scenario reset). */
    void setState(const RigidBodyState &state) { state_ = state; }

    /**
     * Command per-motor thrusts (N); commands are clamped to
     * [0, maxThrustPerMotorN] and reached through the motor lag.
     */
    void commandMotors(const std::array<double, 4> &thrusts_n);

    /**
     * Inject a motor/ESC failure: the motor's thrust is scaled by
     * `effectiveness` (0 = dead, 1 = healthy) from now on — one of
     * the electromechanical faults the inner loop must ride through
     * (paper Table 1: "motor imperfection").
     */
    void failMotor(int index, double effectiveness = 0.0);

    /** Current effectiveness of a motor in [0, 1]. */
    double motorEffectiveness(int index) const;

    /** Instantaneous per-motor thrust actually produced (N). */
    const std::array<double, 4> &motorThrusts() const
    { return actual_; }

    /**
     * Advance the simulation by dt seconds under a world-frame wind
     * velocity (m/s).
     */
    void step(double dt, const Vec3 &wind = {});

    /**
     * Electrical power (W) the propulsion currently draws, from the
     * propeller aero model.
     */
    double electricalPowerW() const;

    /** True when the attitude has departed controlled flight. */
    bool upsideDown() const;

    /** True while resting on the ground plane (z = 0). */
    bool onGround() const;

    /**
     * Fastest descent speed at any ground contact so far (m/s).
     * A soft touchdown stays under ~1 m/s; a ballistic arrival does
     * not — how the resilience harness tells a landing from a crash.
     */
    double maxImpactSpeed() const { return maxImpactSpeed_; }

  private:
    QuadrotorParams params_;
    RigidBodyState state_;
    std::array<double, 4> commanded_{};
    std::array<double, 4> actual_{};
    std::array<double, 4> effectiveness_{1.0, 1.0, 1.0, 1.0};
    double maxImpactSpeed_ = 0.0;
};

} // namespace dronedse

#endif // DRONEDSE_SIM_QUADROTOR_HH
