#include "sim/quadrotor.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "physics/propeller_aero.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

double
QuadrotorParams::hoverThrustPerMotorN() const
{
    return massKg * kGravity / 4.0;
}

QuadrotorParams
QuadrotorParams::fromDesign(const DesignResult &design)
{
    if (!design.feasible)
        fatal("QuadrotorParams::fromDesign: design is infeasible");

    // The rigid-body simulator state is raw doubles; unwrap the typed
    // design here.
    QuadrotorParams p;
    p.massKg = gramsToKg(design.totalWeightG).value();
    p.armLengthM = design.inputs.wheelbaseMm.to<Meters>().value() / 2.0;
    p.propDiameterIn = design.motor.propDiameterIn;
    p.maxThrustPerMotorN =
        design.motor.maxThrust().to<Newtons>().value();
    // Inertia scales like m * L^2 for a cross airframe.
    const double i_xy = 0.22 * p.massKg * p.armLengthM * p.armLengthM;
    p.inertiaDiag = {i_xy, i_xy, 1.9 * i_xy};
    return p;
}

Quadrotor::Quadrotor(QuadrotorParams params)
    : params_(params)
{
    // Start in a steady hover command so tests can perturb from
    // equilibrium.
    commanded_.fill(params_.hoverThrustPerMotorN());
    actual_ = commanded_;
}

void
Quadrotor::commandMotors(const std::array<double, 4> &thrusts_n)
{
    for (int i = 0; i < 4; ++i) {
        commanded_[i] = std::clamp(thrusts_n[i], 0.0,
                                   params_.maxThrustPerMotorN);
    }
}

void
Quadrotor::failMotor(int index, double effectiveness)
{
    if (index < 0 || index > 3)
        fatal("Quadrotor::failMotor: motor index out of range");
    effectiveness_[static_cast<std::size_t>(index)] =
        std::clamp(effectiveness, 0.0, 1.0);
}

double
Quadrotor::motorEffectiveness(int index) const
{
    if (index < 0 || index > 3)
        fatal("Quadrotor::motorEffectiveness: index out of range");
    return effectiveness_[static_cast<std::size_t>(index)];
}

void
Quadrotor::step(double dt, const Vec3 &wind)
{
    if (dt <= 0.0)
        fatal("Quadrotor::step: dt must be positive");
    // One registration per process, then a relaxed add per step —
    // the 1 kHz physics loop must not walk the registry map.
    static obs::Counter &steps =
        obs::metrics().counter("sim.quadrotor.steps");
    steps.add(1);

    // Motor first-order lag toward the (possibly derated) command.
    const double alpha =
        1.0 - std::exp(-dt / params_.motorTimeConstantS);
    for (int i = 0; i < 4; ++i) {
        const double target = commanded_[i] * effectiveness_[i];
        actual_[i] += alpha * (target - actual_[i]);
    }

    const double total_thrust =
        actual_[0] + actual_[1] + actual_[2] + actual_[3];

    // Torques in the body frame.  Motor layout (x fwd, y left):
    //   m0 (+d, -d) CW, m1 (-d, +d) CW, m2 (+d, +d) CCW,
    //   m3 (-d, -d) CCW, with d = L / sqrt(2).
    const double d = params_.armLengthM / std::sqrt(2.0);
    const double k = params_.yawTorquePerThrust;
    const double tau_x =
        d * (-actual_[0] + actual_[1] + actual_[2] - actual_[3]);
    const double tau_y =
        d * (-actual_[0] + actual_[1] - actual_[2] + actual_[3]);
    const double tau_z =
        k * (actual_[0] + actual_[1] - actual_[2] - actual_[3]);

    // Translational dynamics: thrust along body z, gravity, and
    // quadratic drag against the air-relative velocity.
    const Vec3 thrust_world =
        state_.attitude.rotate({0.0, 0.0, total_thrust});
    const Vec3 air_rel = state_.velocity - wind;
    const Vec3 drag = air_rel * (-params_.dragCoefficient *
                                 air_rel.norm());
    const Vec3 accel =
        (thrust_world + drag) / params_.massKg +
        Vec3{0.0, 0.0, -kGravity};

    // Rotational dynamics with gyroscopic coupling:
    //   I w_dot = tau - w x (I w).
    const Vec3 &w = state_.angularVelocity;
    const Vec3 iw{params_.inertiaDiag.x * w.x,
                  params_.inertiaDiag.y * w.y,
                  params_.inertiaDiag.z * w.z};
    const Vec3 coupling = w.cross(iw);
    const Vec3 ang_accel{
        (tau_x - coupling.x) / params_.inertiaDiag.x,
        (tau_y - coupling.y) / params_.inertiaDiag.y,
        (tau_z - coupling.z) / params_.inertiaDiag.z};

    // Semi-implicit Euler: update velocities first, then poses.
    state_.velocity += accel * dt;
    state_.angularVelocity += ang_accel * dt;
    state_.position += state_.velocity * dt;
    state_.attitude = state_.attitude.integrated(state_.angularVelocity,
                                                 dt);

    // Ground plane: the drone rests at z = 0, remembering how hard
    // it arrived.
    if (state_.position.z < 0.0) {
        state_.position.z = 0.0;
        if (state_.velocity.z < 0.0) {
            maxImpactSpeed_ =
                std::max(maxImpactSpeed_, -state_.velocity.z);
            state_.velocity.z = 0.0;
        }
    }
}

bool
Quadrotor::onGround() const
{
    return state_.position.z <= 1e-9;
}

double
Quadrotor::electricalPowerW() const
{
    double power = 0.0;
    for (double thrust_n : actual_) {
        const auto thrust =
            Quantity<Newtons>(thrust_n).to<GramsForce>();
        if (thrust.value() > 1.0) {
            power += dronedse::electricalPowerW(
                         thrust, Quantity<Inches>(params_.propDiameterIn))
                         .value();
        }
    }
    return power;
}

bool
Quadrotor::upsideDown() const
{
    // Body z axis in world coordinates; negative z means inverted.
    const Vec3 up = state_.attitude.rotate({0.0, 0.0, 1.0});
    return up.z < 0.0;
}

} // namespace dronedse
