#include "sim/environment.hh"

#include <cmath>

#include "util/logging.hh"

namespace dronedse {

WindField::WindField(WindParams params, std::uint64_t seed)
    : params_(params), rng_(seed)
{
    if (params_.gustCorrelationS <= 0.0)
        fatal("WindField: gust correlation time must be positive");
}

Vec3
WindField::sample(double dt)
{
    // Ornstein-Uhlenbeck: gust relaxes toward zero with correlation
    // time tau while being driven by white noise scaled to keep the
    // stationary RMS at gustIntensity.
    const double tau = params_.gustCorrelationS;
    const double decay = std::exp(-dt / tau);
    const double drive =
        params_.gustIntensity * std::sqrt(1.0 - decay * decay);
    gust_.x = gust_.x * decay + drive * rng_.gaussian();
    gust_.y = gust_.y * decay + drive * rng_.gaussian();
    gust_.z = 0.3 * (gust_.z * decay + drive * rng_.gaussian());
    return current();
}

} // namespace dronedse
