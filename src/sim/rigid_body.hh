/**
 * @file
 * Rigid-body state shared by the flight simulator and the control
 * stack.  World frame is Z-up; body frame is x-forward, y-left,
 * z-up.
 */

#ifndef DRONEDSE_SIM_RIGID_BODY_HH
#define DRONEDSE_SIM_RIGID_BODY_HH

#include "util/quaternion.hh"
#include "util/vec3.hh"

namespace dronedse {

/** Full 6-DOF state of the vehicle. */
struct RigidBodyState
{
    /** World-frame position (m). */
    Vec3 position;
    /** World-frame velocity (m/s). */
    Vec3 velocity;
    /** Body-to-world attitude. */
    Quaternion attitude;
    /** Body-frame angular velocity (rad/s). */
    Vec3 angularVelocity;
};

} // namespace dronedse

#endif // DRONEDSE_SIM_RIGID_BODY_HH
