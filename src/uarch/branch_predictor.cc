#include "uarch/branch_predictor.hh"

#include "util/logging.hh"

namespace dronedse {

BranchPredictor::BranchPredictor(BranchPredictorConfig config)
    : config_(config)
{
    if (config_.tableBits == 0 || config_.tableBits > 24)
        fatal("BranchPredictor: tableBits out of range");
    if (config_.historyBits > config_.tableBits)
        fatal("BranchPredictor: history longer than table index");
    table_.assign(1ULL << config_.tableBits, 2); // weakly taken
}

bool
BranchPredictor::predictAndTrain(std::uint64_t pc, bool taken)
{
    ++branches_;
    const std::uint64_t mask = (1ULL << config_.tableBits) - 1;
    const std::uint64_t hist_mask =
        (1ULL << config_.historyBits) - 1;
    const std::uint64_t index =
        ((pc >> 2) ^ (history_ & hist_mask)) & mask;

    std::uint8_t &counter = table_[index];
    const bool prediction = counter >= 2;
    const bool correct = prediction == taken;
    if (!correct)
        ++mispredicts_;

    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;

    history_ = ((history_ << 1) | (taken ? 1 : 0)) & hist_mask;
    return correct;
}

} // namespace dronedse
