/**
 * @file
 * Synthetic instruction traces for the autopilot and SLAM workloads.
 *
 * The paper measures the two real programs with Linux perf; here
 * each workload is characterized by the memory/branch behaviour that
 * drives those counters:
 *
 *  - Autopilot (inner loop): small resident state (sensor buffers,
 *    PID state, EKF matrices), streaming accesses, loop branches
 *    that are highly predictable.
 *  - ORB-SLAM: a multi-megabyte map traversed with data-dependent
 *    gather patterns (feature matching, covisibility walks) and
 *    poorly-predictable branches (descriptor comparisons).
 */

#ifndef DRONEDSE_UARCH_TRACE_HH
#define DRONEDSE_UARCH_TRACE_HH

#include <cstdint>
#include <string>

#include "util/rng.hh"

namespace dronedse {

/** Instruction classes the core model distinguishes. */
enum class TraceKind
{
    Alu,
    Load,
    Store,
    Branch,
};

/** One trace event. */
struct TraceEvent
{
    TraceKind kind = TraceKind::Alu;
    /** Data address for loads/stores. */
    std::uint64_t addr = 0;
    /** Program counter (for the branch predictor). */
    std::uint64_t pc = 0;
    /** Branch outcome. */
    bool taken = false;
};

/** Statistical profile of a workload's instruction stream. */
struct WorkloadProfile
{
    std::string name;
    /** Resident data footprint (bytes). */
    std::uint64_t footprintBytes = 64 * 1024;
    /** Fraction of memory ops that stream sequentially. */
    double sequentialFraction = 0.9;
    /** Hot-region size for non-sequential (gather) accesses. */
    std::uint64_t hotRegionBytes = 64 * 1024;
    /** Fraction of gathers that stay in the hot region. */
    double hotFraction = 1.0;
    /** Fraction of instructions that are loads/stores. */
    double memoryFraction = 0.35;
    /** Fraction of instructions that are branches. */
    double branchFraction = 0.15;
    /** Fraction of branches following a loop pattern (predictable). */
    double loopBranchFraction = 0.95;
    /** Loop body length (instructions) for branch patterning. */
    int loopBodyLength = 24;
    /** Base of this workload's address space. */
    std::uint64_t addressBase = 0x10000000;
    /** Distinct static branch sites. */
    int branchSites = 64;
};

/** Inner-loop flight-control profile. */
WorkloadProfile autopilotProfile();

/** ORB-SLAM profile. */
WorkloadProfile slamProfile();

/** Generates an endless event stream for one profile. */
class TraceGenerator
{
  public:
    TraceGenerator(WorkloadProfile profile, std::uint64_t seed);

    /** Produce the next event. */
    TraceEvent next();

    const WorkloadProfile &profile() const { return profile_; }

  private:
    WorkloadProfile profile_;
    Rng rng_;
    std::uint64_t cursor_ = 0;
    long loopCounter_ = 0;
};

} // namespace dronedse

#endif // DRONEDSE_UARCH_TRACE_HH
