#include "uarch/cache.hh"

#include "uarch/perf_counters.hh"
#include "util/logging.hh"

namespace dronedse {

PerfCounters &
PerfCounters::operator+=(const PerfCounters &o)
{
    instructions += o.instructions;
    cycles += o.cycles;
    l1Accesses += o.l1Accesses;
    l1Misses += o.l1Misses;
    llcAccesses += o.llcAccesses;
    llcMisses += o.llcMisses;
    tlbAccesses += o.tlbAccesses;
    tlbMisses += o.tlbMisses;
    branches += o.branches;
    branchMispredicts += o.branchMispredicts;
    return *this;
}

namespace {

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::uint32_t
log2u(std::uint64_t v)
{
    std::uint32_t n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

Cache::Cache(CacheConfig config)
    : config_(config)
{
    if (!isPowerOfTwo(config_.lineBytes) ||
        !isPowerOfTwo(config_.sizeBytes)) {
        fatal("Cache: size and line must be powers of two");
    }
    if (config_.ways == 0 ||
        config_.sizeBytes % (config_.lineBytes * config_.ways) != 0) {
        fatal("Cache: capacity must divide into ways * lines");
    }
    sets_ = static_cast<std::uint32_t>(
        config_.sizeBytes / (config_.lineBytes * config_.ways));
    if (!isPowerOfTwo(sets_))
        fatal("Cache: set count must be a power of two");
    lineShift_ = log2u(config_.lineBytes);
    lines_.resize(static_cast<std::size_t>(sets_) * config_.ways);
}

bool
Cache::lookup(std::uint64_t line_addr)
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr & (sets_ - 1));
    const std::uint64_t tag = line_addr >> log2u(sets_);
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = clock_;
            return true;
        }
    }
    return false;
}

void
Cache::install(std::uint64_t line_addr)
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr & (sets_ - 1));
    const std::uint64_t tag = line_addr >> log2u(sets_);
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.ways];
    Line *victim = base;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = clock_;
            return; // already resident
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
}

bool
Cache::access(std::uint64_t addr)
{
    ++accesses_;
    ++clock_;
    const std::uint64_t line_addr = addr >> lineShift_;

    if (lookup(line_addr))
        return true;

    ++misses_;
    install(line_addr);
    if (config_.nextLinePrefetch && !lookup(line_addr + 1)) {
        install(line_addr + 1);
        ++prefetches_;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

} // namespace dronedse
