/**
 * @file
 * Gshare branch predictor: global history XOR PC indexing a table of
 * 2-bit saturating counters.
 */

#ifndef DRONEDSE_UARCH_BRANCH_PREDICTOR_HH
#define DRONEDSE_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace dronedse {

/** Predictor geometry. */
struct BranchPredictorConfig
{
    /** log2 of the pattern table size. */
    std::uint32_t tableBits = 12;
    /** Global history length (<= tableBits). */
    std::uint32_t historyBits = 12;
};

/** Gshare predictor. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(BranchPredictorConfig config = {});

    /**
     * Predict and then train on the actual outcome.
     * @retval true when the prediction was correct.
     */
    bool predictAndTrain(std::uint64_t pc, bool taken);

    std::uint64_t branches() const { return branches_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Misprediction rate so far. */
    double
    missRate() const
    {
        return branches_ > 0 ? static_cast<double>(mispredicts_) /
                                   static_cast<double>(branches_)
                             : 0.0;
    }

  private:
    BranchPredictorConfig config_;
    std::vector<std::uint8_t> table_;
    std::uint64_t history_ = 0;
    std::uint64_t branches_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace dronedse

#endif // DRONEDSE_UARCH_BRANCH_PREDICTOR_HH
