/**
 * @file
 * Trace-driven in-order core with a stall-based timing model, plus
 * the co-scheduler that time-slices two workloads on one core with
 * shared LLC/TLB/predictor state — the mechanism behind Figure 15's
 * autopilot-vs-SLAM interference.
 */

#ifndef DRONEDSE_UARCH_CORE_HH
#define DRONEDSE_UARCH_CORE_HH

#include <memory>

#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "uarch/perf_counters.hh"
#include "uarch/tlb.hh"
#include "uarch/trace.hh"

namespace dronedse {

/** Stall penalties (cycles), RPi-class in-order core. */
struct CoreTiming
{
    std::uint32_t aluCycles = 1;
    std::uint32_t l1HitCycles = 2;
    std::uint32_t llcHitCycles = 14;
    std::uint32_t memoryCycles = 90;
    std::uint32_t tlbMissCycles = 38;
    std::uint32_t branchMispredictCycles = 16;
};

/** The shared memory-system state of one physical core. */
struct CorePlatform
{
    Cache l1{CacheConfig{32 * 1024, 64, 4}};
    Cache llc{CacheConfig{1024 * 1024, 64, 16}};
    Tlb tlb{TlbConfig{48, 4096}};
    BranchPredictor predictor{};
    CoreTiming timing{};
};

/**
 * Run one workload alone on a fresh platform for `instructions`
 * events and return its counters.
 */
PerfCounters runAlone(TraceGenerator &generator,
                      std::uint64_t instructions,
                      CorePlatform &platform);

/**
 * Run a profile in complete isolation: a fresh default platform and
 * a seeded generator, nothing shared with any other run.  This is
 * the calibration entry point the roofline layer uses to fit peak
 * ops/s and memory bandwidth from microkernel profiles — a pure
 * function of (profile, instructions, seed).
 */
PerfCounters runIsolated(const WorkloadProfile &profile,
                         std::uint64_t instructions,
                         std::uint64_t seed);

/**
 * Execute a single event against the platform, accumulating into
 * `counters` (shared by runAlone and the co-scheduler).
 */
void executeEvent(const TraceEvent &event, CorePlatform &platform,
                  PerfCounters &counters);

/**
 * Canonical scheduler quantum (events) for the Figure 15 study: a
 * preemptive OS switching between the autopilot daemon and SLAM at
 * millisecond granularity on an RPi-class core.
 */
inline constexpr std::uint64_t kDefaultSliceInstructions = 6000;

/** Result of co-running two workloads on one core. */
struct CoScheduleResult
{
    PerfCounters first;
    PerfCounters second;
};

/**
 * Time-slice two workloads on one core (round-robin, `slice`
 * events per turn).  Shared L1/LLC/TLB/predictor state carries
 * across slices, producing the interference the paper measures.
 *
 * @param instructions_each Events to run per workload.
 */
CoScheduleResult coSchedule(TraceGenerator &first,
                            TraceGenerator &second,
                            std::uint64_t instructions_each,
                            std::uint64_t slice,
                            CorePlatform &platform);

} // namespace dronedse

#endif // DRONEDSE_UARCH_CORE_HH
