/**
 * @file
 * TLB model: a small fully-associative LRU translation cache.  The
 * paper's headline contention number is SLAM causing 4.5x as many
 * TLB misses for the autopilot (Section 5.1).
 */

#ifndef DRONEDSE_UARCH_TLB_HH
#define DRONEDSE_UARCH_TLB_HH

#include <cstdint>
#include <vector>

namespace dronedse {

/** TLB geometry. */
struct TlbConfig
{
    /** Number of entries. */
    std::uint32_t entries = 48;
    /** Page size in bytes (power of two). */
    std::uint32_t pageBytes = 4096;
};

/** Fully-associative LRU TLB. */
class Tlb
{
  public:
    explicit Tlb(TlbConfig config = {});

    /** Translate a byte address; @retval true on hit. */
    bool access(std::uint64_t addr);

    /** Invalidate all entries. */
    void flush();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

    /** Miss rate so far. */
    double
    missRate() const
    {
        return accesses_ > 0 ? static_cast<double>(misses_) /
                                   static_cast<double>(accesses_)
                             : 0.0;
    }

  private:
    struct Entry
    {
        std::uint64_t page = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    TlbConfig config_;
    std::uint32_t pageShift_ = 12;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace dronedse

#endif // DRONEDSE_UARCH_TLB_HH
