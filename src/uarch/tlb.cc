#include "uarch/tlb.hh"

#include "util/logging.hh"

namespace dronedse {

Tlb::Tlb(TlbConfig config)
    : config_(config)
{
    if (config_.entries == 0)
        fatal("Tlb: need at least one entry");
    std::uint32_t shift = 0;
    std::uint32_t page = config_.pageBytes;
    if (page == 0 || (page & (page - 1)) != 0)
        fatal("Tlb: page size must be a power of two");
    while (page > 1) {
        page >>= 1;
        ++shift;
    }
    pageShift_ = shift;
    entries_.resize(config_.entries);
}

bool
Tlb::access(std::uint64_t addr)
{
    ++accesses_;
    ++clock_;
    const std::uint64_t page = addr >> pageShift_;

    Entry *victim = &entries_[0];
    for (auto &entry : entries_) {
        if (entry.valid && entry.page == page) {
            entry.lastUse = clock_;
            return true;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid &&
                   entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->page = page;
    victim->lastUse = clock_;
    return false;
}

void
Tlb::flush()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

} // namespace dronedse
