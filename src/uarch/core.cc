#include "uarch/core.hh"

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace dronedse {

namespace {

/** Publish one workload's counters under `uarch.<workload>.*`. */
void
publishCounters(const char *workload, const PerfCounters &counters)
{
    obs::MetricsRegistry &registry = obs::metrics();
    const std::string prefix = std::string("uarch.") + workload;
    registry.counter(prefix + ".instructions")
        .add(counters.instructions);
    registry.counter(prefix + ".cycles").add(counters.cycles);
    registry.counter(prefix + ".llc_misses").add(counters.llcMisses);
    registry.counter(prefix + ".tlb_misses").add(counters.tlbMisses);
    registry.counter(prefix + ".branch_mispredicts")
        .add(counters.branchMispredicts);
    registry.gauge(prefix + ".ipc").set(counters.ipc());
    registry.gauge(prefix + ".llc_miss_rate")
        .set(counters.llcMissRate());
    registry.gauge(prefix + ".tlb_miss_rate")
        .set(counters.tlbMissRate());
    registry.gauge(prefix + ".branch_miss_rate")
        .set(counters.branchMissRate());
}

} // namespace

void
executeEvent(const TraceEvent &event, CorePlatform &platform,
             PerfCounters &counters)
{
    ++counters.instructions;
    const CoreTiming &t = platform.timing;

    switch (event.kind) {
      case TraceKind::Alu:
        counters.cycles += t.aluCycles;
        break;

      case TraceKind::Load:
      case TraceKind::Store: {
        // Address translation first.
        ++counters.tlbAccesses;
        const bool tlb_hit = platform.tlb.access(event.addr);
        if (!tlb_hit) {
            ++counters.tlbMisses;
            counters.cycles += t.tlbMissCycles;
        }
        ++counters.l1Accesses;
        if (platform.l1.access(event.addr)) {
            counters.cycles += t.l1HitCycles;
            break;
        }
        ++counters.l1Misses;
        ++counters.llcAccesses;
        if (platform.llc.access(event.addr)) {
            counters.cycles += t.llcHitCycles;
        } else {
            ++counters.llcMisses;
            counters.cycles += t.memoryCycles;
        }
        break;
      }

      case TraceKind::Branch: {
        ++counters.branches;
        const bool correct =
            platform.predictor.predictAndTrain(event.pc, event.taken);
        counters.cycles += t.aluCycles;
        if (!correct) {
            ++counters.branchMispredicts;
            counters.cycles += t.branchMispredictCycles;
        }
        break;
      }
    }
}

PerfCounters
runAlone(TraceGenerator &generator, std::uint64_t instructions,
         CorePlatform &platform)
{
    PerfCounters counters;
    for (std::uint64_t i = 0; i < instructions; ++i)
        executeEvent(generator.next(), platform, counters);
    return counters;
}

PerfCounters
runIsolated(const WorkloadProfile &profile,
            std::uint64_t instructions, std::uint64_t seed)
{
    TraceGenerator generator(profile, seed);
    CorePlatform platform;
    return runAlone(generator, instructions, platform);
}

CoScheduleResult
coSchedule(TraceGenerator &first, TraceGenerator &second,
           std::uint64_t instructions_each, std::uint64_t slice,
           CorePlatform &platform)
{
    if (slice == 0)
        fatal("coSchedule: slice must be positive");

    CoScheduleResult result;
    std::uint64_t done_first = 0, done_second = 0;
    while (done_first < instructions_each ||
           done_second < instructions_each) {
        for (std::uint64_t i = 0;
             i < slice && done_first < instructions_each;
             ++i, ++done_first) {
            executeEvent(first.next(), platform, result.first);
        }
        for (std::uint64_t i = 0;
             i < slice && done_second < instructions_each;
             ++i, ++done_second) {
            executeEvent(second.next(), platform, result.second);
        }
    }

    // The Figure 15 quantities (miss rates of co-scheduled
    // workloads) go through the registry so an experiment reads one
    // metrics snapshot instead of the bespoke PerfCounters structs.
    obs::metrics().counter("uarch.coschedule.runs").add(1);
    publishCounters("coschedule.first", result.first);
    publishCounters("coschedule.second", result.second);
    return result;
}

} // namespace dronedse
