#include "uarch/trace.hh"

namespace dronedse {

WorkloadProfile
autopilotProfile()
{
    WorkloadProfile p;
    p.name = "autopilot";
    // Sensor buffers, EKF matrices, logging ring: a few hundred KB
    // resident, mostly streamed.
    p.footprintBytes = 224 * 1024;
    p.sequentialFraction = 0.98;
    p.hotRegionBytes = 224 * 1024;
    p.hotFraction = 1.0;
    p.memoryFraction = 0.32;
    p.branchFraction = 0.16;
    p.loopBranchFraction = 0.97;   // tight control loops
    p.loopBodyLength = 24;
    p.addressBase = 0x10000000;
    p.branchSites = 48;
    return p;
}

WorkloadProfile
slamProfile()
{
    WorkloadProfile p;
    p.name = "slam";
    // Map + keyframes: tens of MB, traversed via a hot working set
    // (current frame, local map) plus cold gathers (global map).
    p.footprintBytes = 24ULL * 1024 * 1024;
    p.sequentialFraction = 0.45;
    p.hotRegionBytes = 512 * 1024;
    p.hotFraction = 0.80;
    p.memoryFraction = 0.42;
    p.branchFraction = 0.18;
    p.loopBranchFraction = 0.70;   // data-dependent tests
    p.loopBodyLength = 10;
    p.addressBase = 0x40000000;
    p.branchSites = 512;
    return p;
}

TraceGenerator::TraceGenerator(WorkloadProfile profile,
                               std::uint64_t seed)
    : profile_(std::move(profile)), rng_(seed)
{
}

TraceEvent
TraceGenerator::next()
{
    TraceEvent ev;
    const double r = rng_.uniform();

    if (r < profile_.memoryFraction) {
        ev.kind = rng_.bernoulli(0.3) ? TraceKind::Store
                                      : TraceKind::Load;
        if (rng_.bernoulli(profile_.sequentialFraction)) {
            // Streaming access walking the footprint.
            cursor_ = (cursor_ + 8) % profile_.footprintBytes;
            ev.addr = profile_.addressBase + cursor_;
        } else if (rng_.bernoulli(profile_.hotFraction)) {
            // Gather within the hot working set.
            ev.addr = profile_.addressBase +
                      (rng_.next() % profile_.hotRegionBytes);
        } else {
            // Cold gather over the whole footprint.
            ev.addr = profile_.addressBase +
                      (rng_.next() % profile_.footprintBytes);
        }
    } else if (r < profile_.memoryFraction + profile_.branchFraction) {
        ev.kind = TraceKind::Branch;
        const int site = static_cast<int>(
            rng_.uniformInt(0, profile_.branchSites - 1));
        ev.pc = profile_.addressBase + 0x1000000 +
                static_cast<std::uint64_t>(site) * 16;
        if (rng_.bernoulli(profile_.loopBranchFraction)) {
            // Loop back-edge: taken except at loop exit.
            ++loopCounter_;
            ev.taken = loopCounter_ % profile_.loopBodyLength != 0;
        } else {
            // Data-dependent branch.
            ev.taken = rng_.bernoulli(0.5);
        }
    } else {
        ev.kind = TraceKind::Alu;
    }
    return ev;
}

} // namespace dronedse
