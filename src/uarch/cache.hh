/**
 * @file
 * Set-associative cache model with LRU replacement, used for the
 * private L1 and the shared LLC in the Figure 15 contention study.
 */

#ifndef DRONEDSE_UARCH_CACHE_HH
#define DRONEDSE_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

namespace dronedse {

/** Cache geometry. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 32 * 1024;
    /** Line size in bytes (power of two). */
    std::uint32_t lineBytes = 64;
    /** Associativity. */
    std::uint32_t ways = 4;
    /**
     * Next-line prefetch on miss: hides the streaming workloads'
     * sequential misses (the autopilot profile) while doing little
     * for gather-heavy SLAM — a classic ablation axis for the
     * Figure 15 study.
     */
    bool nextLinePrefetch = false;
};

/** Set-associative LRU cache. */
class Cache
{
  public:
    explicit Cache(CacheConfig config = {});

    /**
     * Access a byte address.
     * @retval true on hit.
     */
    bool access(std::uint64_t addr);

    /** Invalidate all lines. */
    void flush();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    /** Lines installed by the prefetcher. */
    std::uint64_t prefetches() const { return prefetches_; }
    std::uint32_t sets() const { return sets_; }

    /** Miss rate so far. */
    double
    missRate() const
    {
        return accesses_ > 0 ? static_cast<double>(misses_) /
                                   static_cast<double>(accesses_)
                             : 0.0;
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig config_;
    std::uint32_t sets_ = 0;
    std::uint32_t lineShift_ = 0;
    std::vector<Line> lines_;
    std::uint64_t clock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t prefetches_ = 0;

    /** Install a line (demand fill or prefetch). */
    void install(std::uint64_t line_addr);
    /** True when the line is resident (updates recency on hit). */
    bool lookup(std::uint64_t line_addr);
};

} // namespace dronedse

#endif // DRONEDSE_UARCH_CACHE_HH
