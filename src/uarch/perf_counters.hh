/**
 * @file
 * Performance counters reported by the trace-driven core model —
 * the quantities Linux perf reports in the paper's Figure 15 study
 * (IPC, LLC miss rate, branch miss rate, TLB misses).
 */

#ifndef DRONEDSE_UARCH_PERF_COUNTERS_HH
#define DRONEDSE_UARCH_PERF_COUNTERS_HH

#include <cstdint>

namespace dronedse {

/** Aggregated counters for one workload. */
struct PerfCounters
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t tlbAccesses = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;

    /** Instructions per cycle. */
    double
    ipc() const
    {
        return cycles > 0
                   ? static_cast<double>(instructions) /
                         static_cast<double>(cycles)
                   : 0.0;
    }

    /** LLC miss rate over LLC accesses. */
    double
    llcMissRate() const
    {
        return llcAccesses > 0
                   ? static_cast<double>(llcMisses) /
                         static_cast<double>(llcAccesses)
                   : 0.0;
    }

    /** Branch misprediction rate. */
    double
    branchMissRate() const
    {
        return branches > 0
                   ? static_cast<double>(branchMispredicts) /
                         static_cast<double>(branches)
                   : 0.0;
    }

    /** TLB miss rate. */
    double
    tlbMissRate() const
    {
        return tlbAccesses > 0
                   ? static_cast<double>(tlbMisses) /
                         static_cast<double>(tlbAccesses)
                   : 0.0;
    }

    /** Element-wise accumulation. */
    PerfCounters &operator+=(const PerfCounters &o);
};

} // namespace dronedse

#endif // DRONEDSE_UARCH_PERF_COUNTERS_HH
